"""Tests for the repro.search subsystem: specs, the CI-honest promotion
rule, the successive-halving controller (run/resume/replay/crash), the
explore-exploit report, the fidelity harness and the CLI."""

import json

import pytest

from repro.harness.policy import ExecutionPolicy
from repro.search import (
    PromotionDecision,
    Rung,
    SearchSpec,
    SearchSpecError,
    exhaustive_reference,
    fidelity_check,
    format_search_report,
    full_search_report,
    load_search_spec,
    objective_value,
    promote,
    run_search,
    search_result,
)
from repro.sweep import ResultStore, SweepSpec
from repro.sweep.stats import PointAggregate

NO_CACHE = ExecutionPolicy(cache=False)

TOML = """
[search]
name = "tsearch"
fraction = 0.5
objective = "mean"
confidence = 0.9
max_extra_seeds = 1

[[search.rungs]]
seeds = 1
sample = 300

[[search.rungs]]
seeds = 2

[sweep]
name = "tgrid"
workloads = ["crafty"]
lengths = [500]
seeds = 1

[base]
machine = "mtvp"
threads = 2
predictor = "oracle"

[axes]
store_buffer_entries = [16, 64]
"""


def mini_sweep(**overrides) -> SweepSpec:
    params = dict(
        name="msgrid",
        base={"machine": "mtvp", "threads": 2, "predictor": "oracle"},
        axes={"store_buffer_entries": [4, 16, 64]},
        workloads=("crafty",),
        lengths=(500,),
        seeds=(0,),
    )
    params.update(overrides)
    return SweepSpec(**params)


def mini_search(**overrides) -> SearchSpec:
    params = dict(
        sweep=mini_sweep(),
        rungs=({"seeds": 1, "sample": 300}, {"seeds": 2}),
        fraction=0.5,
        max_extra_seeds=1,
    )
    params.update(overrides)
    return SearchSpec(**params)


def agg(pid, idx, speedups, n_failed=0, confidence=0.95):
    return PointAggregate(
        pid, idx, "w", 500, {}, {}, list(range(len(speedups))),
        list(speedups), n_failed, confidence=confidence,
    )


class TestSearchSpec:
    def test_toml_and_json_round_trip(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text(TOML)
        spec = load_search_spec(path)
        assert spec.name == "tsearch"
        assert spec.fraction == 0.5 and spec.confidence == 0.9
        assert [r.seeds for r in spec.rungs] == [1, 2]
        assert spec.rungs[0].sample == 300 and spec.rungs[1].sample is None
        assert spec.sweep.name == "tgrid"
        jpath = tmp_path / "s.json"
        spec.to_json(jpath)
        clone = load_search_spec(jpath)
        assert clone.to_dict() == spec.to_dict()

    def test_name_defaults_to_sweep_name(self):
        spec = SearchSpec(sweep=mini_sweep(), rungs=({"seeds": 1},))
        assert spec.name == "msgrid-search"

    def test_store_sweep_names(self):
        spec = mini_search(name="s")
        assert spec.rung_sweep(0) == "s:rung0"
        assert spec.rung_sweep(1) == "s:rung1"
        assert spec.exhaustive_sweep() == "s:exhaustive"

    def test_rung_warmup_overrides_sweep(self):
        spec = mini_search(
            sweep=mini_sweep(warmup=1000),
            rungs=({"seeds": 1, "sample": 300, "warmup": 200}, {"seeds": 1}),
        )
        assert spec.rung_warmup(0) == 200
        assert spec.rung_warmup(1) == 1000

    def test_needs_at_least_one_rung(self):
        with pytest.raises(SearchSpecError, match="at least one rung"):
            mini_search(rungs=())

    def test_fidelity_must_be_non_decreasing(self):
        with pytest.raises(SearchSpecError, match="non-decreasing"):
            mini_search(rungs=({"seeds": 2}, {"seeds": 2, "sample": 300}))
        with pytest.raises(SearchSpecError, match="non-decreasing"):
            mini_search(
                rungs=({"seeds": 3, "sample": 300}, {"seeds": 2, "sample": 300})
            )

    def test_bad_knobs_rejected(self):
        with pytest.raises(SearchSpecError, match="fraction"):
            mini_search(fraction=0.0)
        with pytest.raises(SearchSpecError, match="fraction"):
            mini_search(fraction=1.5)
        with pytest.raises(SearchSpecError, match="objective"):
            mini_search(objective="median")
        with pytest.raises(SearchSpecError, match="confidence"):
            mini_search(confidence=1.0)
        with pytest.raises(SearchSpecError, match="max_extra_seeds"):
            mini_search(max_extra_seeds=-1)
        with pytest.raises(SearchSpecError, match="min_survivors"):
            mini_search(min_survivors=0)
        with pytest.raises(SearchSpecError, match="seeds >= 1"):
            Rung(seeds=0)
        with pytest.raises(SearchSpecError, match="sample"):
            Rung(seeds=1, sample=0)

    def test_unknown_search_field_rejected(self, tmp_path):
        data = {"search": {"bogus": 1, "rungs": [{"seeds": 1}]},
                "sweep": mini_sweep().to_dict()}
        with pytest.raises(SearchSpecError, match="unknown search field"):
            SearchSpec.from_dict(data)

    def test_embedded_sweep_errors_are_wrapped(self):
        with pytest.raises(SearchSpecError, match="embedded sweep"):
            SearchSpec.from_dict(
                {"search": {"rungs": [{"seeds": 1}]},
                 "sweep": {"name": "x", "bogus": 1}}
            )

    def test_missing_sweep_tables_rejected(self):
        with pytest.raises(SearchSpecError, match="embedded sweep"):
            SearchSpec.from_dict({"search": {"rungs": [{"seeds": 1}]}})


class TestPromote:
    def test_clear_separation_eliminates(self):
        aggs = [
            agg("a", 0, [20.0, 21.0, 19.0]),
            agg("b", 1, [10.0, 11.0, 9.0]),
            agg("c", 2, [-5.0, -6.0, -4.0]),
            agg("d", 3, [-30.0, -31.0, -29.0]),
        ]
        decision = promote(aggs, fraction=0.5)
        assert [a.point_id for a in decision.survivors] == ["a", "b"]
        assert [a.point_id for a in decision.eliminated] == ["c", "d"]
        assert decision.ambiguous == [] and decision.failed == []
        assert decision.cut == aggs[1].ci_lo

    def test_overlapping_ci_is_ambiguous_not_eliminated(self):
        aggs = [
            agg("a", 0, [20.0, 21.0, 19.0]),
            agg("b", 1, [10.0, 30.0, 12.0]),  # wide CI straddling the cut
        ]
        decision = promote(aggs, fraction=0.5)
        assert [a.point_id for a in decision.survivors] == ["a"]
        assert [a.point_id for a in decision.ambiguous] == ["b"]
        assert decision.eliminated == []
        assert [a.point_id for a in decision.promoted] == ["a", "b"]

    def test_everyone_survives_when_k_covers_ranked(self):
        aggs = [agg("a", 0, [1.0, 2.0]), agg("b", 1, [3.0, 4.0])]
        decision = promote(aggs, fraction=1.0)
        assert decision.cut is None
        assert len(decision.survivors) == 2 and not decision.eliminated

    def test_min_survivors_floor(self):
        aggs = [agg(p, i, [float(10 - 10 * i)] * 3) for i, p in
                enumerate("abcd")]
        decision = promote(aggs, fraction=0.01, min_survivors=2)
        assert len(decision.survivors) == 2

    def test_failed_points_never_promote(self):
        aggs = [agg("a", 0, [5.0, 6.0]), agg("dead", 1, [], n_failed=2)]
        decision = promote(aggs, fraction=0.5)
        assert [a.point_id for a in decision.failed] == ["dead"]
        assert "dead" not in {a.point_id for a in decision.promoted}

    def test_rank_ties_break_by_grid_order(self):
        aggs = [agg("b", 1, [5.0, 5.0]), agg("a", 0, [5.0, 5.0])]
        decision = promote(aggs, fraction=0.5)
        assert decision.survivors[0].point_id == "a"

    def test_objective_value_falls_back_mean_ward(self):
        broken = agg("x", 0, [-150.0, 10.0])  # geomean undefined
        assert broken.geomean is None
        assert objective_value(broken, "geomean") == broken.mean
        dead = agg("y", 1, [], n_failed=1)
        assert objective_value(dead, "mean") == float("-inf")

    def test_decision_to_dict(self):
        decision = promote([agg("a", 0, [5.0, 6.0])], fraction=1.0)
        assert isinstance(decision, PromotionDecision)
        d = decision.to_dict()
        assert d["survivors"] == ["a"] and d["cut"] is None


class TestController:
    def test_search_completes_with_winner_from_grid(self, tmp_path):
        spec = mini_search()
        store = ResultStore(tmp_path / "s.db")
        summary = run_search(spec, store, policy=NO_CACHE)
        assert summary.complete
        assert summary.grid_points == 3
        assert len(summary.rungs) == 2
        grid_ids = {p.point_id for p in spec.sweep.expand()}
        assert summary.winner["point_id"] in grid_ids
        assert summary.done == summary.total and summary.failed == 0
        assert summary.simulated == summary.total
        # the funnel never grows
        assert summary.rungs[1].points_in <= summary.rungs[0].points_in
        # leaderboard is best-first by the objective
        values = [e["value"] for e in summary.leaderboard]
        assert values == sorted(values, reverse=True)
        assert 0 < summary.units
        assert summary.exhaustive_units > 0

    def test_replay_matches_live_run_and_dispatches_nothing(
        self, tmp_path, monkeypatch
    ):
        spec = mini_search()
        store = ResultStore(tmp_path / "s.db")
        live = run_search(spec, store, policy=NO_CACHE)

        import repro.harness.parallel as par

        def boom(*a):
            raise AssertionError("replay must not simulate")

        monkeypatch.setattr(par, "_run_task", boom)
        replay = search_result(spec, store)
        assert replay.simulated == 0
        assert replay.complete
        assert replay.winner == live.winner

        def settled(summary):
            # `simulated` counts this invocation's dispatches: live > 0,
            # replay 0 by construction.  Everything else must match.
            d = summary.to_dict()
            d["simulated"] = 0
            for rung in d["rungs"]:
                rung["simulated"] = 0
            return d

        assert settled(replay) == settled(live)

    def test_resume_of_finished_search_is_a_noop(self, tmp_path, monkeypatch):
        spec = mini_search()
        store = ResultStore(tmp_path / "s.db")
        run_search(spec, store, policy=NO_CACHE)

        import repro.harness.parallel as par

        def boom(*a):
            raise AssertionError("resume must not re-simulate done rows")

        monkeypatch.setattr(par, "_run_task", boom)
        resumed = run_search(spec, store, policy=NO_CACHE)
        assert resumed.complete and resumed.simulated == 0

    def test_max_points_truncates_the_grid(self, tmp_path):
        spec = mini_search()
        store = ResultStore(tmp_path / "s.db")
        summary = run_search(spec, store, policy=NO_CACHE, max_points=1)
        assert summary.grid_points == 1 and summary.complete

    def test_failing_point_degrades_gracefully(self, tmp_path):
        spec = mini_search(
            sweep=mini_sweep(axes={"spawn_latency": [1, -1]}, retries=0),
        )
        store = ResultStore(tmp_path / "s.db")
        summary = run_search(spec, store, policy=NO_CACHE)
        assert summary.failed > 0
        assert summary.winner is not None  # the healthy point still wins
        assert summary.winner["params"]["spawn_latency"] == 1

    def test_replay_of_empty_store_reports_incomplete(self, tmp_path):
        spec = mini_search()
        store = ResultStore(tmp_path / "s.db")
        summary = search_result(spec, store)
        assert not summary.complete and summary.winner is None
        assert summary.total == 0
        assert summary.rungs and summary.rungs[0].decision is None

    def test_exhaustive_reference_uses_final_rung_protocol(self):
        spec = mini_search(
            sweep=mini_sweep(warmup=100),
            rungs=({"seeds": 1, "sample": 300}, {"seeds": 2, "sample": 400}),
        )
        ref = exhaustive_reference(spec)
        assert ref.name == spec.exhaustive_sweep()
        assert ref.seeds == (0, 1)
        assert ref.sample == 400 and ref.warmup == 100
        # same grid, same point ids
        assert [p.point_id for p in ref.expand()] == [
            p.point_id for p in spec.sweep.expand()
        ]


class TestCrashResume:
    """The acceptance contract: kill the controller mid-campaign, resume,
    and require zero re-simulation of committed rows plus a final report
    byte-identical to an uninterrupted run."""

    def run_interrupted(self, tmp_path, monkeypatch, kill_after):
        spec = mini_search()
        store = ResultStore(tmp_path / "crash.db")
        committed = 0
        real_mark_done = ResultStore.mark_done

        def dying_mark_done(self, *args, **kwargs):
            nonlocal committed
            if committed >= kill_after:
                raise KeyboardInterrupt
            committed += 1
            return real_mark_done(self, *args, **kwargs)

        monkeypatch.setattr(ResultStore, "mark_done", dying_mark_done)
        with pytest.raises(KeyboardInterrupt):
            run_search(spec, store, policy=ExecutionPolicy(cache=False, chunk=1))
        monkeypatch.setattr(ResultStore, "mark_done", real_mark_done)
        return spec, store, committed

    def test_resume_never_resimulates_committed_rows(
        self, tmp_path, monkeypatch
    ):
        kill_after = 2
        spec, store, committed = self.run_interrupted(
            tmp_path, monkeypatch, kill_after
        )
        assert committed == kill_after
        done_before = sum(
            store.counts(spec.rung_sweep(i))["done"]
            for i in range(len(spec.rungs))
        )
        assert done_before == kill_after

        import repro.harness.parallel as par

        calls = []
        real = par._run_task
        monkeypatch.setattr(
            par, "_run_task", lambda *a: calls.append(a) or real(*a)
        )
        resumed = run_search(spec, store, policy=NO_CACHE)
        assert resumed.complete
        # zero re-simulation: only never-committed rows were dispatched
        assert len(calls) == resumed.simulated == resumed.total - committed

    def test_resumed_report_byte_identical_to_uninterrupted(
        self, tmp_path, monkeypatch
    ):
        spec, store, _ = self.run_interrupted(tmp_path, monkeypatch, 2)
        run_search(spec, store, policy=NO_CACHE)
        resumed_report = full_search_report(spec, store)

        clean_store = ResultStore(tmp_path / "clean.db")
        run_search(mini_search(), clean_store, policy=NO_CACHE)
        clean_report = full_search_report(mini_search(), clean_store)
        assert resumed_report == clean_report


class TestReport:
    def test_report_renders_funnel_leaderboard_winner(self, tmp_path):
        spec = mini_search()
        store = ResultStore(tmp_path / "s.db")
        summary = run_search(spec, store, policy=NO_CACHE)
        text = format_search_report(spec, summary)
        assert text.startswith(f"# search {spec.name}")
        assert "## rung funnel" in text
        assert "## final leaderboard" in text
        assert "## winner" in text
        assert summary.winner["point_id"] in text
        assert "% of exhaustive grid cost" in text

    def test_report_on_unstarted_search_shows_no_winner(self, tmp_path):
        spec = mini_search()
        store = ResultStore(tmp_path / "s.db")
        text = full_search_report(spec, store)
        assert "(none yet" in text


class TestFidelity:
    def test_smoke_search_matches_exhaustive_under_budget(self, tmp_path):
        """THE acceptance criterion: on the checked-in smoke grid the
        search finds the same winner as the exhaustive sweep for well
        under 60% of the grid's (point, seed, length) work."""
        spec = load_search_spec("sweeps/search_smoke.toml")
        store = ResultStore(tmp_path / "fid.db")
        verdict = fidelity_check(spec, store, policy=NO_CACHE)
        assert verdict["winner_match"], (
            f"search winner {verdict['search_winner']} != "
            f"grid winner {verdict['grid_winner']}"
        )
        assert verdict["cost"]["fraction"] < 0.6
        # the search actually pruned: rung 0 eliminated someone
        rung0 = verdict["search"]["rungs"][0]
        assert len(rung0["decision"]["eliminated"]) > 0
        # both campaigns completed in the shared store
        assert verdict["search"]["complete"]
        assert verdict["exhaustive"]["failed"] == 0
        assert store.sweeps()  # rungs + exhaustive share one database


class TestSearchCLI:
    def test_run_status_report_resume(self, tmp_path, capsys):
        from repro.__main__ import main

        spec_path = tmp_path / "t.toml"
        spec_path.write_text(TOML)
        db = str(tmp_path / "t.db")

        # status before any run fails cleanly
        assert main(["search", "status", str(spec_path), "--db", db]) == 1
        assert "no rows" in capsys.readouterr().out

        assert main(["search", "run", str(spec_path), "--db", db,
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "winner" in out

        assert main(["search", "resume", str(spec_path), "--db", db,
                     "--no-cache"]) == 0
        assert "0 simulated" in capsys.readouterr().out

        assert main(["search", "status", str(spec_path), "--db", db]) == 0
        out = capsys.readouterr().out
        assert "rung 0" in out and "commits:" in out and "winner:" in out

        json_path = tmp_path / "s.json"
        assert main(["search", "report", str(spec_path), "--db", db,
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "# search tsearch" in out
        payload = json.loads(json_path.read_text())
        assert payload["complete"] and payload["winner"]

    def test_status_json_is_the_summary_dict(self, tmp_path, capsys):
        from repro.__main__ import main

        spec_path = tmp_path / "t.toml"
        spec_path.write_text(TOML)
        db = str(tmp_path / "t.db")
        assert main(["search", "run", str(spec_path), "--db", db,
                     "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["search", "status", str(spec_path), "--db", db,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "tsearch"
        assert payload["cost_fraction"] > 0
        assert [r["index"] for r in payload["rungs"]] == [0, 1]
