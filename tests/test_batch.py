"""Identity suite for the lane-batched lockstep kernel.

The contract of :mod:`repro.core.engine.batch` is absolute: an N-lane
batched run produces the *same bytes* as N sequential scalar runs, for
every SimMode, whether lanes diverge mid-run (MTVP spawns) or numpy is
missing entirely.  These tests pin that contract from five directions:

* golden digests — per-lane stats digests captured from the scalar
  engine on fixed lane groups, one per SimMode (the ``batched_*``
  entries in ``golden_stats.json``);
* a forced mid-run divergence test — an MTVP group whose lanes spawn and
  fall out of the vector path one by one, with the vectorized kernel
  provably engaged first;
* the numpy-absent fallback — scalar path auto-selected, one warning per
  process, identical results;
* eligibility guards — oversized port caps, observed engines and
  singleton batches all take the scalar path;
* the harness seam — ``run_simulations(lanes=...)`` groups seed
  replicates without changing results, cache keys or progress counts.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from pathlib import Path

import pytest

import repro.core.engine.batch as batch
from repro import _steady_state_footprint
from repro.core import MachineConfig
from repro.core.engine import Engine
from repro.core.engine.batch import batchable, have_numpy, run_lockstep
from repro.select import AlwaysSelector, IlpPredSelector
from repro.vp import OraclePredictor, WangFranklinPredictor
from repro.workloads import get_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_stats.json"
BATCHED = {
    name: fx
    for name, fx in json.loads(GOLDEN_PATH.read_text()).items()
    if "lanes" in fx
}

PREDICTORS = {"wang_franklin": WangFranklinPredictor, "oracle": OraclePredictor}
SELECTORS = {"ilp_pred": IlpPredSelector, "always": AlwaysSelector}


def _canonical(stats) -> dict:
    d = stats.to_dict()
    d.pop("instructions_stepped", None)
    return d


def _digest(d: dict) -> str:
    blob = json.dumps(d, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _build_engines(fx: dict) -> list[Engine]:
    """One engine per lane, seeds ``seed .. seed+lanes-1``, exactly as
    :func:`repro.harness.runner.simulate_batch` constructs them."""
    name, kwargs = fx["config"]
    workload = get_workload(fx["workload"])
    engines = []
    for i in range(fx["lanes"]):
        config = getattr(MachineConfig, name)(**kwargs)
        trace = workload.trace(length=fx["length"], seed=fx["seed"] + i)
        warm = (
            _steady_state_footprint(workload, config)
            if config.warm_caches
            else None
        )
        engines.append(
            Engine(
                trace,
                config,
                predictor=PREDICTORS[fx["predictor"]](),
                selector=SELECTORS[fx["selector"]](),
                warm_addresses=warm,
            )
        )
    return engines


class TestGoldenBatched:
    """Batched == golden == sequential scalar, per lane and per SimMode."""

    @pytest.mark.parametrize("name", sorted(BATCHED))
    def test_batched_matches_golden_and_scalar(self, name):
        fx = BATCHED[name]
        batched = [
            _canonical(s)
            for s in run_lockstep(_build_engines(fx), verify="full")
        ]
        assert [_digest(d) for d in batched] == fx["digests"]
        scalar = [_canonical(e.run()) for e in _build_engines(fx)]
        assert batched == scalar

    def test_batched_goldens_cover_every_mode(self):
        families = {fx["config"][0] for fx in BATCHED.values()}
        assert {"hpca05_baseline", "stvp", "mtvp", "spawn_only"} <= families


class TestDivergenceFallback:
    """MTVP lanes that spawn fall out of the vector path mid-run; the
    remaining lanes keep vectorizing and nothing changes in the stats."""

    FX = BATCHED.get("batched_mtvp", None)

    @pytest.mark.skipif(not have_numpy(), reason="vector path needs numpy")
    def test_mid_run_divergence_is_bit_identical(self, monkeypatch):
        assert self.FX is not None
        # prove the vectorized kernel actually engaged (no silent
        # wholesale fallback) by spying on its construction
        engaged = []
        original = batch._LockstepBatch

        def spying(engines):
            engaged.append(len(engines))
            return original(engines)

        monkeypatch.setattr(batch, "_LockstepBatch", spying)
        batched = run_lockstep(_build_engines(self.FX), verify="full")
        assert engaged == [self.FX["lanes"]]
        # every lane spawned, i.e. every lane diverged out of lockstep
        # mid-run and finished on the scalar engine
        assert all(s.spawns > 0 for s in batched)
        scalar = [e.run() for e in _build_engines(self.FX)]
        assert [_canonical(a) for a in batched] == [
            _canonical(b) for b in scalar
        ]


class TestNumpyAbsent:
    """Without numpy every batched entry point degrades to the scalar
    loop: one RuntimeWarning per process, identical results."""

    FX = BATCHED.get("batched_baseline", None)

    def test_fallback_warns_once_and_matches(self, monkeypatch):
        assert self.FX is not None
        scalar = [_canonical(e.run()) for e in _build_engines(self.FX)]
        monkeypatch.setattr(batch, "_np", None)
        monkeypatch.setattr(batch, "_warned_no_numpy", False)
        assert not have_numpy()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = run_lockstep(_build_engines(self.FX))
            second = run_lockstep(_build_engines(self.FX))
        numpy_warnings = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "numpy" in str(w.message)
        ]
        assert len(numpy_warnings) == 1, "fallback must warn exactly once"
        assert [_canonical(s) for s in first] == scalar
        assert [_canonical(s) for s in second] == scalar

    def test_simulate_batch_survives_numpy_absence(self, monkeypatch):
        from repro.harness.runner import RunSpec, simulate_batch

        spec = RunSpec("base", MachineConfig.hpca05_baseline)
        expected = [
            _canonical(spec.run("mcf", 1200, s)) for s in (0, 1)
        ]
        monkeypatch.setattr(batch, "_np", None)
        monkeypatch.setattr(batch, "_warned_no_numpy", True)
        got = simulate_batch("mcf", spec, 1200, (0, 1))
        assert [_canonical(s) for s in got] == expected


class TestEligibility:
    def test_port_caps_over_127_are_not_batchable(self):
        import dataclasses

        trace = get_workload("mcf").trace(length=600, seed=0)
        config = dataclasses.replace(
            MachineConfig.hpca05_baseline(), issue_width=128
        )
        wide = Engine(trace, config)
        assert not batchable(wide)
        # the batch entry point still runs it, scalar, with results
        # identical to a direct run
        partner = Engine(trace, dataclasses.replace(config))
        expected = _canonical(
            Engine(trace, dataclasses.replace(config)).run()
        )
        for stats in run_lockstep([wide, partner]):
            assert _canonical(stats) == expected

    def test_observed_engines_are_not_batchable(self):
        from repro.obs import MetricsRegistry

        trace = get_workload("mcf").trace(length=600, seed=0)
        engine = Engine(
            trace, MachineConfig.hpca05_baseline(), metrics=MetricsRegistry()
        )
        assert not batchable(engine)

    def test_started_engines_are_not_batchable(self):
        trace = get_workload("mcf").trace(length=600, seed=0)
        engine = Engine(trace, MachineConfig.hpca05_baseline())
        assert batchable(engine)
        engine.run(max_steps=100)
        assert not batchable(engine)

    def test_single_engine_passthrough(self):
        trace = get_workload("mcf").trace(length=600, seed=0)
        (stats,) = run_lockstep([Engine(trace, MachineConfig.hpca05_baseline())])
        expected = Engine(trace, MachineConfig.hpca05_baseline()).run()
        assert _canonical(stats) == _canonical(expected)
        assert run_lockstep([]) == []


class TestHarnessLanes:
    """The parallel-layer seam: grouping is invisible in the results."""

    def _spec(self):
        from repro.harness.runner import RunSpec

        return RunSpec(
            "mtvp", lambda: MachineConfig.mtvp(8), "wang-franklin", "always"
        )

    def test_lane_grouping_identity_and_per_seed_cache(self, tmp_path):
        from repro.harness.cache import ResultCache
        from repro.harness.parallel import run_simulations

        spec = self._spec()
        tasks = [("mcf", spec, 1500, s) for s in range(4)]
        plain = run_simulations(tasks, lanes=1)
        cache = ResultCache(tmp_path)
        events = []
        grouped = run_simulations(
            tasks, lanes="auto", cache=cache, progress=events.append
        )
        assert [_canonical(a) for a in grouped] == [
            _canonical(b) for b in plain
        ]
        # results cached per seed, one progress event per task
        assert cache.stores == 4
        assert len(events) == 4
        repeat = run_simulations(tasks, lanes="auto", cache=cache)
        assert cache.hits == 4
        assert [_canonical(a) for a in repeat] == [
            _canonical(b) for b in plain
        ]

    def test_lane_cap_splits_groups(self):
        from repro.harness.parallel import run_simulations

        spec = self._spec()
        tasks = [("mcf", spec, 1500, s) for s in range(5)]
        capped = run_simulations(tasks, lanes=2)
        plain = run_simulations(tasks, lanes=1)
        assert [_canonical(a) for a in capped] == [
            _canonical(b) for b in plain
        ]

    def test_resolve_lanes(self, monkeypatch):
        from repro.harness.parallel import resolve_lanes

        monkeypatch.delenv("REPRO_LANES", raising=False)
        assert resolve_lanes(None) == 1
        assert resolve_lanes(6) == 6
        assert resolve_lanes("auto") == 0
        assert resolve_lanes("auto", group_size=9) == 9
        assert resolve_lanes(0, group_size=9) == 9
        monkeypatch.setenv("REPRO_LANES", "7")
        assert resolve_lanes(None) == 7
        monkeypatch.setenv("REPRO_LANES", "auto")
        assert resolve_lanes(None) == 0
        with pytest.raises(ValueError):
            resolve_lanes("many")

    def test_simulate_batch_matches_sequential(self):
        from repro.harness.runner import simulate_batch

        spec = self._spec()
        seeds = (2, 5, 9)
        batched = simulate_batch("mcf", spec, 1500, seeds)
        scalar = [spec.run("mcf", 1500, s) for s in seeds]
        assert [_canonical(a) for a in batched] == [
            _canonical(b) for b in scalar
        ]

    def test_trace_group_memo_reuses_traces(self):
        workload = get_workload("mcf")
        first = workload.trace_many(900, (0, 1, 2))
        again = workload.trace_many(900, (0, 1, 2))
        assert all(a is b for a, b in zip(first, again))
        assert first[0] == workload.trace(900, seed=0)


class TestCli:
    def test_run_lanes_reports_aggregate(self, capsys):
        from repro.__main__ import main

        rc = main(["run", "mcf", "--machine", "baseline",
                   "--length", "400", "--lanes", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 lanes (seeds 0..1)" in out
        assert "aggregate sim throughput" in out

    def test_run_lanes_rejects_trace_and_profile(self, capsys, tmp_path):
        from repro.__main__ import main

        rc = main(["run", "mcf", "--length", "400", "--lanes", "2",
                   "--profile", str(tmp_path / "p.prof")])
        assert rc == 1
        assert "--lanes cannot be combined" in capsys.readouterr().out


class TestLaneBench:
    def test_run_lane_point_record_schema(self):
        from repro.harness.bench import TABLE1_POINTS, run_lane_point

        rec = run_lane_point(
            TABLE1_POINTS[0], lanes=2, repeats=1, length=800
        )
        assert rec["name"] == "table1_baseline_mcf_x2"
        assert rec["lanes"] == 2
        assert rec["instructions"] == 1600
        assert rec["digests_match"] is True
        assert rec["kips"] > 0 and rec["kips_per_lane"] > 0
        assert rec["kips_per_lane"] == pytest.approx(rec["kips"] / 2, rel=0.01)
        assert rec["speedup_vs_scalar"] > 0
        assert len(rec["stats_digest"]) == 64

    def test_check_regression_gates_lane_points_on_aggregate(self, capsys):
        from repro.harness.bench import check_regression

        lane = {
            "name": "p_x4", "length": 1000, "lanes": 4, "ips": 50_000.0,
            "kips": 50.0, "kips_per_lane": 12.5, "digests_match": True,
        }
        prev = {"points": [dict(lane, ips=100_000.0)]}
        assert check_regression({"points": [lane]}, prev, 10.0) == 1
        out = capsys.readouterr().out
        assert "aggregate over 4 lanes" in out and "12.5 kips/lane" in out
        assert check_regression(
            {"points": [lane]}, {"points": [lane]}, 10.0
        ) == 0
        capsys.readouterr()
        # a digest divergence gates even when throughput held up
        broken = dict(lane, digests_match=False)
        assert check_regression(
            {"points": [broken]}, {"points": [lane]}, 10.0
        ) == 1
        assert "diverged from scalar" in capsys.readouterr().out
