"""Regression guards for the optimized simulation kernel.

The kernel-optimization PR rewrote the scheduler, ``_step`` and the memory
path for throughput under a bit-identity contract: every timing decision
must match the straightforward pre-optimization engine.  These tests pin
that contract down from three directions:

* golden digests — full SimStats dicts captured from the pre-optimization
  engine on fixed (workload, config, seed) points, one per SimMode;
* a scheduler A/B test — the incremental scheduler against the reference
  ``min()``-over-runnable scheduler on a spawn-heavy multi-context run;
* unit guards for the O(1)/amortized bookkeeping (cache occupancy,
  in-flight pruning) and the throughput layer (bench module, --profile).
"""

from __future__ import annotations

import hashlib
import json
import pstats
from pathlib import Path

import pytest

from repro import _steady_state_footprint
from repro.core import FetchPolicy, MachineConfig
from repro.core.engine import Engine
from repro.memory import Cache, MemoryHierarchy
from repro.select import AlwaysSelector, IlpPredSelector
from repro.vp import OraclePredictor, WangFranklinPredictor
from repro.workloads import get_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_stats.json"
#: scalar fixtures only — entries carrying a "lanes" field describe
#: lane-batched replicate groups and are exercised by tests/test_batch.py
GOLDEN = {
    name: fx
    for name, fx in json.loads(GOLDEN_PATH.read_text()).items()
    if "lanes" not in fx
}

PREDICTORS = {"wang_franklin": WangFranklinPredictor, "oracle": OraclePredictor}
SELECTORS = {"ilp_pred": IlpPredSelector, "always": AlwaysSelector}


def _canonical_stats(stats) -> dict:
    d = stats.to_dict()
    # not part of the captured goldens: the field postdates them, and the
    # digest must stay comparable across future additive stats changes
    d.pop("instructions_stepped", None)
    return d


def _digest(d: dict) -> str:
    blob = json.dumps(d, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _run_fixture(fx: dict, reference_scheduler: bool = False):
    """Replay a fixture exactly as :func:`repro.simulate` would run it
    (including steady-state cache warmup), with scheduler choice exposed."""
    name, kwargs = fx["config"]
    config = getattr(MachineConfig, name)(**kwargs)
    workload = get_workload(fx["workload"])
    trace = workload.trace(length=fx["length"], seed=fx["seed"])
    warm = _steady_state_footprint(workload, config) if config.warm_caches else None
    engine = Engine(
        trace,
        config,
        predictor=PREDICTORS[fx["predictor"]](),
        selector=SELECTORS[fx["selector"]](),
        warm_addresses=warm,
        reference_scheduler=reference_scheduler,
    )
    return engine, engine.run()


class TestGoldenDigests:
    """The optimized engine reproduces pre-optimization stats bit for bit."""

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_stats_match_golden(self, name):
        fx = GOLDEN[name]
        _engine, stats = _run_fixture(fx)
        got = _canonical_stats(stats)
        assert got == fx["stats"], f"stats diverged from golden {name!r}"
        assert _digest(got) == fx["digest"]

    def test_goldens_cover_every_mode(self):
        # one fixture per simulated mode family, so a regression in any
        # mode-specific path cannot slip through unexercised
        families = {fx["config"][0] for fx in GOLDEN.values()}
        assert {"hpca05_baseline", "stvp", "mtvp", "spawn_only"} <= families


class TestSchedulerEquivalence:
    """Incremental scheduler == reference min()-scheduler, decision for
    decision, including with several simultaneously runnable contexts."""

    # NO_STALL keeps the spawning parent fetching alongside its children,
    # which is what actually populates the runnable set; gcc's branchy
    # trace spawns eagerly enough to stack contexts four deep
    MULTI_FX = {
        "workload": "gcc 1",
        "length": 3000,
        "seed": 7,
        "config": ["mtvp", {"threads": 8,
                            "fetch_policy": FetchPolicy.NO_STALL,
                            "multi_value": 2}],
        "predictor": "oracle",
        "selector": "always",
    }

    def test_multi_context_run_is_genuinely_multi(self):
        engine, stats = _run_fixture(self.MULTI_FX, reference_scheduler=True)
        assert engine.max_runnable_observed >= 3
        assert stats.spawns > 100

    @pytest.mark.parametrize("fx", [MULTI_FX] + [GOLDEN[n] for n in sorted(GOLDEN)],
                             ids=["multi_context"] + sorted(GOLDEN))
    def test_fast_scheduler_matches_reference(self, fx):
        _eng_ref, ref_stats = _run_fixture(fx, reference_scheduler=True)
        _eng_fast, fast_stats = _run_fixture(fx, reference_scheduler=False)
        assert _canonical_stats(fast_stats) == _canonical_stats(ref_stats)


class TestBookkeeping:
    def test_cache_occupancy_tracks_actual_lines(self):
        cache = Cache(size_bytes=4096, assoc=2, line_size=64)
        assert cache.occupancy == 0
        # fill past capacity so insert exercises all three branches
        # (new line, re-reference, eviction), then invalidate some
        for i in range(200):
            cache.insert((i * 64) % (8192))
        for i in range(0, 40, 2):
            cache.invalidate(i * 64)
        cache.insert(0)  # re-insert one invalidated line
        assert cache.occupancy == sum(len(s) for s in cache._sets)
        assert 0 < cache.occupancy <= cache.num_sets * cache.assoc

    def test_invalidate_miss_leaves_occupancy_alone(self):
        cache = Cache(size_bytes=4096, assoc=2, line_size=64)
        cache.insert(0)
        assert not cache.invalidate(1 << 30)
        assert cache.occupancy == 1

    def test_inflight_prune_is_amortized(self):
        h = MemoryHierarchy()
        # below the threshold nothing is scanned, regardless of staleness
        h._inflight = {line: 0 for line in range(100)}
        h._prune_inflight(now=10**9)
        assert len(h._inflight) == 100

        # past the threshold, stale records go and the threshold re-arms
        # to twice the survivors (floored), so the next sweep is again
        # amortized against new growth rather than every access
        h._inflight = {line: 0 for line in range(5000)}
        h._inflight.update({line: 10**9 for line in range(5000, 5100)})
        h._prune_inflight(now=10**9)
        assert len(h._inflight) == 100
        assert h._prune_threshold == 4096

        h._inflight = {line: 10**9 for line in range(5000)}
        h._prune_inflight(now=10**9)
        assert len(h._inflight) == 5000
        assert h._prune_threshold == 10000


class TestThroughputLayer:
    def test_bench_run_point_records_speedup_and_digest(self):
        from repro.harness.bench import TABLE1_POINTS, run_point

        point = TABLE1_POINTS[0]
        rec = run_point(point, repeats=1)
        assert rec["name"] == "table1_baseline_mcf"
        assert rec["instructions"] > 0
        assert rec["ips"] > 0
        assert len(rec["stats_digest"]) == 64
        assert rec["speedup_vs_pre_opt"] > 0

        # a shortened run loses the pre-opt comparison (length-specific)
        short = run_point(point, repeats=1, length=1000)
        assert "speedup_vs_pre_opt" not in short
        assert short["length"] == 1000

    def test_bench_results_roundtrip_and_format(self, tmp_path):
        from repro.harness.bench import (
            TABLE1_POINTS,
            format_bench,
            load_bench,
            run_bench,
            write_bench,
        )

        results = run_bench(points=TABLE1_POINTS[:1], repeats=1, length=800)
        path = write_bench(results, tmp_path / "bench.json")
        assert load_bench(path) == results
        table = format_bench(results, previous=results)
        assert "table1_baseline_mcf" in table
        assert "+0.0%" in table  # identical previous run -> zero delta
        assert load_bench(tmp_path / "missing.json") is None

    def test_committed_bench_record_is_current_schema(self):
        from repro.harness.bench import PRE_OPT_REFERENCE_IPS, load_bench

        committed = load_bench(Path(__file__).parent.parent / "BENCH_engine.json")
        assert committed is not None, "BENCH_engine.json missing at repo root"
        assert committed["schema"] == 1
        scalar = {p["name"] for p in committed["points"] if "lanes" not in p}
        assert scalar == set(PRE_OPT_REFERENCE_IPS)
        # lane-batched points carry the aggregate/per-lane split and must
        # never have shipped with a failed batched-vs-scalar identity
        for p in committed["points"]:
            if "lanes" in p:
                assert p["lanes"] > 1
                assert p["kips_per_lane"] <= p["kips"]
                assert p["digests_match"] is True

    def test_cli_profile_writes_loadable_profile(self, tmp_path, capsys):
        from repro.__main__ import main

        prof = tmp_path / "run.prof"
        rc = main(["run", "mcf", "--machine", "baseline",
                   "--length", "400", "--profile", str(prof)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sim throughput" in out and "kips" in out
        stats = pstats.Stats(str(prof))
        functions = {fn for _, _, fn in stats.stats}
        assert "run" in functions or "_run_scheduler" in functions

    def test_engine_reports_wall_time_and_kips(self):
        trace = get_workload("mcf").trace(length=500, seed=0)
        engine = Engine(trace, MachineConfig.hpca05_baseline())
        stats = engine.run()
        assert stats.wall_seconds > 0
        assert stats.sim_kips > 0
        assert "wall_seconds" not in stats.to_dict()
