"""Unit tests for the tagged speculative store buffer (Section 3.3)."""

import pytest

from repro.memory import StoreBuffer


class TestCapacity:
    def test_rejects_when_full(self):
        sb = StoreBuffer(capacity=2)
        assert sb.allocate(1, 10, 0x100, 7, time=0)
        assert sb.allocate(1, 11, 0x200, 8, time=1)
        assert not sb.allocate(1, 12, 0x300, 9, time=2)
        assert sb.rejections == 1

    def test_unlimited_never_rejects(self):
        sb = StoreBuffer(capacity=None)
        for i in range(1000):
            assert sb.allocate(1, i, 0x1000 + 8 * i, i, time=i)
        assert sb.free_slots is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StoreBuffer(capacity=0)

    def test_non_power_of_two_granularity_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            StoreBuffer(capacity=8, granularity=6)

    def test_zero_granularity_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            StoreBuffer(capacity=8, granularity=0)

    def test_free_slots(self):
        sb = StoreBuffer(capacity=4)
        sb.allocate(1, 0, 0x100, 1, 0)
        assert sb.free_slots == 3
        assert not sb.is_full


class TestVisibilitySearch:
    def test_own_store_visible(self):
        sb = StoreBuffer(capacity=8)
        sb.allocate(2, 5, 0x100, 42, 0)
        hit = sb.search(0x100, visible=(1, 2), trace_pos=9)
        assert hit is not None and hit.value == 42

    def test_ancestor_store_visible(self):
        sb = StoreBuffer(capacity=8)
        sb.allocate(1, 5, 0x100, 42, 0)
        assert sb.search(0x100, visible=(1, 3), trace_pos=9) is not None

    def test_non_ancestor_store_invisible(self):
        sb = StoreBuffer(capacity=8)
        sb.allocate(2, 5, 0x100, 42, 0)
        # thread 3 was spawned from thread 1, sibling of 2
        assert sb.search(0x100, visible=(1, 3), trace_pos=9) is None

    def test_program_order_respected(self):
        sb = StoreBuffer(capacity=8)
        sb.allocate(1, 20, 0x100, 42, 0)
        # a load earlier in the trace must not see a later store
        assert sb.search(0x100, visible=(1,), trace_pos=15) is None
        assert sb.search(0x100, visible=(1,), trace_pos=25) is not None

    def test_youngest_visible_store_wins(self):
        sb = StoreBuffer(capacity=8)
        sb.allocate(1, 5, 0x100, 1, 0)
        sb.allocate(2, 8, 0x100, 2, 0)
        hit = sb.search(0x100, visible=(1, 2), trace_pos=10)
        assert hit.value == 2

    def test_granularity(self):
        sb = StoreBuffer(capacity=8, granularity=8)
        sb.allocate(1, 5, 0x100, 42, 0)
        assert sb.search(0x104, visible=(1,), trace_pos=9) is not None
        assert sb.search(0x108, visible=(1,), trace_pos=9) is None


class TestRelease:
    def test_confirm_returns_entries_in_program_order(self):
        sb = StoreBuffer(capacity=8)
        sb.allocate(1, 9, 0x300, 3, 0)
        sb.allocate(1, 5, 0x100, 1, 0)
        released = sb.confirm_thread(1)
        assert [e.trace_pos for e in released] == [5, 9]
        assert len(sb) == 0

    def test_squash_discards(self):
        sb = StoreBuffer(capacity=2)
        sb.allocate(1, 5, 0x100, 1, 0)
        sb.allocate(1, 6, 0x108, 2, 0)
        assert sb.squash_thread(1) == 2
        assert not sb.is_full
        assert sb.search(0x100, visible=(1,), trace_pos=10) is None

    def test_drain_upto_releases_old_threads_only(self):
        sb = StoreBuffer(capacity=8)
        sb.allocate(1, 5, 0x100, 1, 0)
        sb.allocate(2, 8, 0x200, 2, 0)
        sb.allocate(5, 9, 0x300, 3, 0)
        released = sb.drain_upto(2)
        assert {e.owner for e in released} == {1, 2}
        assert sb.occupancy_of(5) == 1

    def test_capacity_recovered_after_release(self):
        sb = StoreBuffer(capacity=2)
        sb.allocate(1, 5, 0x100, 1, 0)
        sb.allocate(2, 6, 0x108, 2, 0)
        assert sb.is_full
        sb.confirm_thread(1)
        assert sb.allocate(3, 7, 0x110, 3, 0)

    def test_confirm_missing_thread_is_noop(self):
        sb = StoreBuffer(capacity=2)
        assert sb.confirm_thread(9) == []
        assert sb.squash_thread(9) == 0


class TestStats:
    def test_forward_hit_counter(self):
        sb = StoreBuffer(capacity=8)
        sb.allocate(1, 5, 0x100, 1, 0)
        sb.search(0x100, visible=(1,), trace_pos=9)
        sb.search(0x900, visible=(1,), trace_pos=9)
        assert sb.forward_hits == 1
        assert sb.allocations == 1
