"""Engine tests: single-threaded value prediction (STVP)."""

from repro.core import MachineConfig
from repro.select import AlwaysSelector
from repro.vp import OraclePredictor

from tests.conftest import FixedPredictor, alu_block, run_engine


def chain_after_miss(ib, chain=6, addr=1 << 33):
    """A memory-missing load followed by a serial dependent chain."""
    trace = [ib.load(dst=1, addr=addr, value=5)]
    prev = 1
    for i in range(chain):
        dst = 2 + (i % 8)
        trace.append(ib.int_alu(dst=dst, srcs=(prev,)))
        prev = dst
    return trace


class TestCorrectPrediction:
    def test_dependents_start_early(self, builder):
        trace = chain_after_miss(builder) + alu_block(builder, 20, dst_base=20)
        base_cfg = MachineConfig.hpca05_baseline(warm_caches=False)
        stvp_cfg = MachineConfig.stvp(warm_caches=False)
        _, base = run_engine(trace, base_cfg)
        _, stvp = run_engine(
            trace, stvp_cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert stvp.stvp_predictions == 1
        assert stvp.stvp_correct == 1
        assert stvp.cycles <= base.cycles

    def test_commit_still_blocks_on_the_load(self, builder):
        """The STVP limitation: the window cannot advance past the load."""
        trace = chain_after_miss(builder)
        stvp_cfg = MachineConfig.stvp(warm_caches=False)
        _, stats = run_engine(
            trace, stvp_cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        # even with perfect prediction, the run cannot finish before the
        # load returns from memory
        assert stats.cycles >= stvp_cfg.mem_latency

    def test_no_spawns_in_stvp_mode(self, builder):
        trace = chain_after_miss(builder)
        _, stats = run_engine(
            trace,
            MachineConfig.stvp(warm_caches=False),
            predictor=OraclePredictor(),
            selector=AlwaysSelector(),
        )
        assert stats.spawns == 0
        assert stats.mtvp_predictions == 0


class TestIncorrectPrediction:
    def test_selective_reissue_penalty(self, builder):
        trace = chain_after_miss(builder, chain=4)
        cfg = MachineConfig.stvp(warm_caches=False)
        _, wrong = run_engine(
            trace, cfg, predictor=FixedPredictor(offset=1), selector=AlwaysSelector()
        )
        assert wrong.stvp_incorrect == 1
        base_cfg = MachineConfig.hpca05_baseline(warm_caches=False)
        _, base = run_engine(trace, base_cfg)
        # a wrong prediction costs the reissue penalty relative to baseline
        assert wrong.cycles >= base.cycles

    def test_wrong_predictions_never_corrupt_results(self, builder):
        trace = chain_after_miss(builder) + alu_block(builder, 30, dst_base=20)
        _, stats = run_engine(
            trace,
            MachineConfig.stvp(warm_caches=False),
            predictor=FixedPredictor(offset=7),
            selector=AlwaysSelector(),
        )
        # every instruction still commits usefully exactly once
        assert stats.useful_instructions == len(trace)

    def test_accuracy_accounting(self, builder):
        trace = []
        for i in range(6):
            trace += chain_after_miss(builder, chain=2, addr=(1 << 33) + i * (1 << 20))
        _, stats = run_engine(
            trace,
            MachineConfig.stvp(warm_caches=False),
            predictor=FixedPredictor(offset=1),
            selector=AlwaysSelector(),
        )
        assert stats.stvp_predictions == 6
        assert stats.stvp_incorrect == 6
        assert stats.prediction_accuracy == 0.0


class TestBaselineModeNeverPredicts:
    def test_baseline_ignores_predictor(self, builder):
        trace = chain_after_miss(builder)
        _, stats = run_engine(
            trace,
            MachineConfig.hpca05_baseline(warm_caches=False),
            predictor=OraclePredictor(),
            selector=AlwaysSelector(),
        )
        assert stats.total_predictions == 0
