"""Unit tests for the cache hierarchy (latency, inclusion, MSHR merge)."""

from repro.memory import Cache, MemLevel, MemoryHierarchy


def make_hierarchy(prefetcher=None, mshrs=16):
    return MemoryHierarchy(
        l1=Cache(4 * 1024, 2, latency=2, name="L1"),
        l2=Cache(32 * 1024, 8, latency=20, name="L2"),
        l3=Cache(256 * 1024, 16, latency=50, name="L3"),
        mem_latency=1000,
        prefetcher=prefetcher,
        mshrs=mshrs,
    )


class TestLatencies:
    def test_cold_miss_costs_memory_latency(self):
        h = make_hierarchy()
        complete, level = h.load(0x10000, pc=0x100, now=5)
        assert level is MemLevel.MEMORY
        assert complete == 5 + 1000

    def test_l1_hit_after_fill(self):
        h = make_hierarchy()
        h.load(0x10000, 0x100, 0)
        complete, level = h.load(0x10000, 0x100, 2000)
        assert level is MemLevel.L1
        assert complete == 2000 + 2

    def test_l2_hit_when_l1_evicted(self):
        h = make_hierarchy()
        h.load(0x10000, 0x100, 0)
        # blow the tiny L1 with conflicting lines, keeping L2 resident
        for i in range(1, 200):
            h.load(0x10000 + i * 64, 0x100, 0)
        complete, level = h.load(0x10000, 0x100, 5000)
        assert level is MemLevel.L2
        assert complete == 5000 + 20

    def test_inclusive_fill(self):
        h = make_hierarchy()
        h.load(0x40000, 0x100, 0)
        assert h.l1.probe(0x40000)
        assert h.l2.probe(0x40000)
        assert h.l3.probe(0x40000)


class TestMissMerging:
    def test_second_access_merges_with_inflight_fill(self):
        h = make_hierarchy()
        first, _ = h.load(0x20000, 0x100, 0)
        second, _ = h.load(0x20000 + 8, 0x104, 100)
        assert second == first

    def test_after_fill_completes_it_is_a_plain_hit(self):
        h = make_hierarchy()
        h.load(0x20000, 0x100, 0)
        _, level = h.load(0x20000, 0x100, 1500)
        assert level is MemLevel.L1


class TestMshrs:
    def test_mshr_limit_serializes_excess_misses(self):
        h = make_hierarchy(mshrs=2)
        t0 = h.load(0x1000000, 0x100, 0)[0]
        t1 = h.load(0x2000000, 0x104, 0)[0]
        t2 = h.load(0x3000000, 0x108, 0)[0]
        assert t0 == 1000 and t1 == 1000
        # the third miss waits for the earliest fill to free an MSHR
        assert t2 == 2000
        assert h.mshr_stalls == 1

    def test_mshrs_recycle_over_time(self):
        h = make_hierarchy(mshrs=1)
        h.load(0x1000000, 0x100, 0)
        late, _ = h.load(0x2000000, 0x104, 5000)
        assert late == 6000
        assert h.mshr_stalls == 0


class TestStores:
    def test_store_allocates_into_caches(self):
        h = make_hierarchy()
        h.store(0x50000, 0)
        _, level = h.load(0x50000, 0x100, 10)
        assert level is MemLevel.L1

    def test_store_hit_keeps_line(self):
        h = make_hierarchy()
        h.load(0x50000, 0x100, 0)
        h.store(0x50000, 10)
        assert h.l1.probe(0x50000)


class TestProbeLevel:
    def test_probe_levels(self):
        h = make_hierarchy()
        assert h.probe_level(0x60000) is MemLevel.MEMORY
        h.load(0x60000, 0x100, 0)
        assert h.probe_level(0x60000) is MemLevel.L1

    def test_probe_has_no_side_effects(self):
        h = make_hierarchy()
        h.probe_level(0x70000)
        assert h.accesses == 0
        assert not h.l3.probe(0x70000)


class TestStats:
    def test_level_counts(self):
        h = make_hierarchy()
        h.load(0x80000, 0x100, 0)
        h.load(0x80000, 0x100, 2000)
        assert h.level_counts[MemLevel.MEMORY] == 1
        assert h.level_counts[MemLevel.L1] == 1
        assert h.accesses == 2

    def test_reset_stats(self):
        h = make_hierarchy()
        h.load(0x80000, 0x100, 0)
        h.reset_stats()
        assert h.accesses == 0
        assert h.level_counts[MemLevel.MEMORY] == 0
        # contents survive
        assert h.l1.probe(0x80000)
