"""Unit tests for last-value and stride predictors."""

import pytest

from repro.isa import InstructionBuilder
from repro.vp import LastValuePredictor, StridePredictor


def load_seq(values, pc=0x1000):
    ib = InstructionBuilder()
    return [ib.load(dst=1, addr=0x8000 + 8 * i, value=v, pc=pc) for i, v in enumerate(values)]


class TestLastValue:
    def test_no_prediction_when_cold(self):
        p = LastValuePredictor()
        inst = load_seq([42])[0]
        assert p.predict(inst) is None

    def test_predicts_after_repeats(self):
        p = LastValuePredictor(threshold=2)
        for inst in load_seq([7, 7, 7]):
            p.train(inst, inst.value)
        pred = p.predict(load_seq([7])[0])
        assert pred is not None and pred.value == 7

    def test_confidence_resets_on_change(self):
        p = LastValuePredictor(threshold=2)
        for inst in load_seq([7, 7, 7, 9]):
            p.train(inst, inst.value)
        assert p.predict(load_seq([9])[0]) is None

    def test_non_load_returns_none(self):
        ib = InstructionBuilder()
        p = LastValuePredictor()
        assert p.predict(ib.int_alu(dst=1)) is None

    def test_distinct_pcs_tracked_separately(self):
        p = LastValuePredictor(threshold=1)
        a = load_seq([5, 5], pc=0x1000)
        b = load_seq([9, 9], pc=0x2000)
        for inst in a + b:
            p.train(inst, inst.value)
        assert p.predict(a[0]).value == 5
        assert p.predict(b[0]).value == 9

    def test_rejects_bad_table_size(self):
        with pytest.raises(ValueError):
            LastValuePredictor(entries=1000)


class TestStride:
    def test_predicts_arithmetic_sequence(self):
        p = StridePredictor(threshold=2)
        seq = load_seq([10, 20, 30, 40])
        for inst in seq:
            p.train(inst, inst.value)
        pred = p.predict(load_seq([50])[0])
        assert pred is not None and pred.value == 50

    def test_two_delta_rule(self):
        p = StridePredictor(threshold=2)
        # stride observed only once: not confident yet
        for inst in load_seq([10, 20]):
            p.train(inst, inst.value)
        assert p.predict(load_seq([30])[0]) is None

    def test_stride_change_resets(self):
        p = StridePredictor(threshold=2)
        for inst in load_seq([10, 20, 30, 35]):
            p.train(inst, inst.value)
        assert p.predict(load_seq([40])[0]) is None

    def test_zero_stride_acts_as_last_value(self):
        p = StridePredictor(threshold=2)
        for inst in load_seq([7, 7, 7, 7]):
            p.train(inst, inst.value)
        assert p.predict(load_seq([7])[0]).value == 7

    def test_speculative_update_chains_predictions(self):
        p = StridePredictor(threshold=2)
        for inst in load_seq([10, 20, 30, 40]):
            p.train(inst, inst.value)
        nxt = load_seq([50])[0]
        pred = p.predict(nxt)
        assert pred.value == 50
        p.speculative_update(nxt, pred.value)
        pred2 = p.predict(load_seq([60])[0])
        assert pred2.value == 60

    def test_train_after_speculative_update_keeps_stride(self):
        p = StridePredictor(threshold=2)
        seq = load_seq([10, 20, 30, 40, 50, 60])
        for inst in seq[:4]:
            p.train(inst, inst.value)
        pred = p.predict(seq[4])
        p.speculative_update(seq[4], pred.value)
        p.train(seq[4], 50)
        assert p.predict(seq[5]).value == 60

    def test_wraparound_arithmetic(self):
        top = (1 << 64) - 4
        mask = (1 << 64) - 1
        values = [top, (top + 2) & mask, (top + 4) & mask, (top + 6) & mask]
        p = StridePredictor(threshold=2)
        for inst in load_seq(values):
            p.train(inst, inst.value)
        pred = p.predict(load_seq([0])[0])
        assert pred.value == (top + 8) & mask


class TestAccuracyBookkeeping:
    def test_record_outcome(self):
        p = LastValuePredictor()
        p.record_outcome(True)
        p.record_outcome(False)
        p.record_outcome(True)
        assert p.predictions == 3
        assert p.correct == 2
        assert abs(p.accuracy - 2 / 3) < 1e-9

    def test_accuracy_zero_when_unused(self):
        assert LastValuePredictor().accuracy == 0.0
