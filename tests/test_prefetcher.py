"""Unit tests for the stride prefetcher and stream buffers."""

import pytest

from repro.memory import MemLevel, MemoryHierarchy, StridePrefetcher


def make_pf(**kw):
    defaults = dict(depth=8, fill_latency=100, hit_latency=4)
    defaults.update(kw)
    return StridePrefetcher(**defaults)


class TestDenseDetection:
    def test_sequential_walk_gets_covered(self):
        pf = make_pf()
        base = 1 << 30
        # three sequential misses confirm; later lines should be buffered
        for i in range(3):
            assert pf.lookup(base + i * 64, now=i * 10) is None
            pf.train(0x100, base + i * 64, now=i * 10)
        assert pf.active_streams == 1
        hit = pf.lookup(base + 3 * 64, now=1000)
        assert hit is not None

    def test_hit_consumes_and_extends(self):
        pf = make_pf(depth=4)
        base = 1 << 30
        for i in range(3):
            pf.train(0x100, base + i * 64, now=0)
        sb = pf._streams[0]
        frontier_before = sb.next_line
        assert pf.lookup(base + 3 * 64, now=50) is not None
        assert pf.lookup(base + 3 * 64, now=60) is None  # consumed
        assert sb.next_line > frontier_before or len(sb.entries) == 4

    def test_fill_latency_respected(self):
        pf = make_pf(fill_latency=500)
        base = 1 << 30
        for i in range(3):
            pf.train(0x100, base + i * 64, now=0)
        # the line was prefetched at now=0, so an early demand waits
        t = pf.lookup(base + 3 * 64, now=10)
        assert t == 500

    def test_late_demand_pays_only_hit_latency(self):
        pf = make_pf(fill_latency=100, hit_latency=4)
        base = 1 << 30
        for i in range(3):
            pf.train(0x100, base + i * 64, now=0)
        t = pf.lookup(base + 3 * 64, now=1000)
        assert t == 1004


class TestRandomIsNotPrefetched:
    def test_random_misses_do_not_allocate(self):
        import random

        pf = make_pf()
        rng = random.Random(3)
        base = 1 << 30
        for i in range(100):
            pf.train(0x100 + (i % 8) * 4, base + rng.randrange(0, 1 << 24, 64), now=i)
        assert pf.active_streams == 0


class TestRegionIsolation:
    def test_interleaved_streams_in_distinct_regions_both_covered(self):
        pf = make_pf()
        a, b = 1 << 30, 1 << 34
        for i in range(4):
            pf.train(0x100, a + i * 64, now=i)
            pf.train(0x200, b + i * 64, now=i)
        assert pf.active_streams == 2
        assert pf.lookup(a + 4 * 64, now=1000) is not None
        assert pf.lookup(b + 4 * 64, now=1000) is not None


class TestMistraining:
    def test_mistrain_counter(self):
        pf = make_pf()
        base = 1 << 30
        # establish a confirmed per-PC stride
        for i in range(4):
            pf.train(0x500, base + i * 4096 * 16, now=i)
        before = pf.mistrains
        # now break it
        pf.train(0x500, base + 3, now=10)
        assert pf.mistrains == before + 1


class TestSparsePcStreams:
    def test_large_consistent_pc_stride_allocates(self):
        pf = make_pf(depth=4)
        base = 1 << 30
        stride = 64 * 64  # 64 lines >> 4 * depth
        for i in range(5):
            pf.train(0x900, base + i * stride, now=i)
        assert pf.active_streams >= 1
        assert pf.lookup(base + 5 * stride, now=1000) is not None


class TestPoolManagement:
    def test_buffer_pool_bounded(self):
        pf = make_pf(num_streams=2)
        for k in range(6):
            region = 1 << (30 + k)
            for i in range(4):
                pf.train(0x100 + k * 4, region + i * 64, now=k * 100 + i)
        assert pf.active_streams <= 2

    def test_stale_entries_age_out(self):
        pf = make_pf(depth=4)
        base = 1 << 30
        for i in range(3):
            pf.train(0x100, base + i * 64, now=0)
        sb = pf._streams[0]
        # consume far ahead repeatedly; old entries must not pin capacity
        for j in range(3, 40):
            pf.lookup(base + j * 64, now=j * 10)
        horizon = sb.next_line - 2 * pf.depth
        assert all(line >= horizon for line in sb.entries)


class TestDescendingStreams:
    """Regression tests for negative-stride (descending walk) streams."""

    def test_descending_pc_stride_allocates_and_hits(self):
        pf = make_pf(depth=4)
        base = 1 << 30
        stride = -64 * 64  # 64 lines per step, well past the sparse gate
        for i in range(5):
            pf.train(0x900, base + i * stride, now=i)
        assert pf.active_streams >= 1
        # the buffer must run *down* the walk, ahead of the next demand
        assert pf.lookup(base + 5 * stride, now=1000) is not None
        assert pf.lookup(base + 6 * stride, now=1000) is not None

    def test_covered_sees_descending_frontier(self):
        pf = make_pf(depth=4)
        pf._allocate(0x1, -2, start_line=1000, now=0)
        sb = pf._streams[0]
        assert sb.next_line == 1000 - 2 * pf.depth
        # lines the stream is about to prefetch count as covered, exactly
        # as they do for an ascending stream
        assert pf._covered(sb.next_line - 1)
        assert pf._covered(sb.next_line - 3)
        assert not pf._covered(sb.next_line - 4)

    def test_no_duplicate_buffer_for_covered_descending_walk(self):
        pf = make_pf(depth=4)
        pf._allocate(0x1, -64, 1 << 24, now=0)
        sb = pf._streams[0]
        allocs = pf.allocations
        # a second PC walks the same descending path; its successor line
        # lands one stride ahead of the stream frontier, so the cover
        # filter must suppress the duplicate allocation that would
        # otherwise thrash the 8-entry pool
        final_line = sb.next_line
        addr = final_line << pf._line_shift
        step = -64 << pf._line_shift
        for i in range(3, -1, -1):
            pf.train(0x904, addr - i * step, now=10)
        assert pf.allocations == allocs
        assert pf.active_streams == 1

    def test_descending_aging_evicts_stale_lines_not_fresh_ones(self):
        pf = make_pf(depth=4)
        base_line = 1 << 24
        pf._allocate(0x3, -1, base_line, now=0)
        sb = pf._streams[0]
        fresh = sorted(sb.entries)
        # a walk that skipped lines leaves them far *above* the descending
        # head; with the buffer at capacity, _extend must age those out —
        # not the freshly prefetched lines ahead of (below) the stream
        stale = [base_line + 100, base_line + 200]
        for line in stale:
            sb.entries[line] = 0
        pf._extend(sb, now=10)
        assert all(line not in sb.entries for line in stale)
        assert sorted(sb.entries) == fresh


class TestValidation:
    def test_non_power_of_two_line_size_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            StridePrefetcher(line_size=48)

    def test_zero_line_size_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            StridePrefetcher(line_size=0)


class TestHierarchyIntegration:
    def test_stream_hits_counted_at_stream_level(self):
        pf = make_pf()
        h = MemoryHierarchy(prefetcher=pf, mem_latency=1000)
        base = 1 << 30
        for i in range(10):
            h.load(base + i * 64, 0x100, now=i * 200)
        assert h.level_counts[MemLevel.STREAM] > 0
        assert pf.stream_hits == h.level_counts[MemLevel.STREAM]
