"""Tests for machine configuration presets and statistics."""

import pytest

from repro.core import FetchPolicy, MachineConfig, SimMode, SimStats
from repro.memory import MemLevel


class TestTable1Defaults:
    """The defaults must reproduce Table 1 of the paper exactly."""

    def test_pipeline(self):
        cfg = MachineConfig()
        assert cfg.pipeline_depth == 30
        assert cfg.fetch_width == 16

    def test_windows(self):
        cfg = MachineConfig()
        assert cfg.rob_size == 256
        assert cfg.rename_regs == 224
        assert cfg.iq_size == 64

    def test_issue(self):
        cfg = MachineConfig()
        assert cfg.issue_width == 8
        assert cfg.int_issue == 6
        assert cfg.fp_issue == 2
        assert cfg.mem_issue == 4

    def test_memory_hierarchy(self):
        cfg = MachineConfig()
        assert (cfg.l1_size, cfg.l1_assoc, cfg.l1_latency) == (64 * 1024, 2, 2)
        assert (cfg.l2_size, cfg.l2_assoc, cfg.l2_latency) == (512 * 1024, 8, 20)
        assert (cfg.l3_size, cfg.l3_assoc, cfg.l3_latency) == (4 * 1024 * 1024, 16, 50)
        assert cfg.mem_latency == 1000

    def test_prefetcher(self):
        cfg = MachineConfig()
        assert cfg.prefetch_enabled
        assert cfg.prefetch_entries == 256
        assert cfg.prefetch_streams == 8


class TestPresets:
    def test_baseline_is_single_context_no_vp(self):
        cfg = MachineConfig.hpca05_baseline()
        assert cfg.mode is SimMode.BASELINE
        assert cfg.num_contexts == 1

    def test_stvp_single_context(self):
        cfg = MachineConfig.stvp()
        assert cfg.mode is SimMode.STVP
        assert cfg.num_contexts == 1

    def test_mtvp_thread_count(self):
        assert MachineConfig.mtvp(4).num_contexts == 4
        assert MachineConfig.mtvp(4).mode is SimMode.MTVP

    def test_mtvp_defaults_match_paper_realistic_setup(self):
        cfg = MachineConfig.mtvp(8)
        assert cfg.spawn_latency == 8
        assert cfg.store_buffer_entries == 128
        assert cfg.fetch_policy is FetchPolicy.SINGLE_FETCH_PATH

    def test_wide_window_preset(self):
        cfg = MachineConfig.wide_window()
        assert cfg.rob_size == 8192
        assert cfg.iq_size == 8192
        assert cfg.rename_regs >= 1 << 20
        assert cfg.mode is SimMode.BASELINE

    def test_spawn_only_preset(self):
        cfg = MachineConfig.spawn_only(8)
        assert cfg.mode is SimMode.SPAWN_ONLY
        assert cfg.num_contexts == 8

    def test_overrides_flow_through(self):
        cfg = MachineConfig.mtvp(8, spawn_latency=16, store_buffer_entries=None)
        assert cfg.spawn_latency == 16
        assert cfg.store_buffer_entries is None


class TestValidation:
    def test_rejects_zero_contexts(self):
        with pytest.raises(ValueError):
            MachineConfig(num_contexts=0)

    def test_rejects_zero_multi_value(self):
        with pytest.raises(ValueError):
            MachineConfig(multi_value=0)

    def test_rejects_negative_spawn_latency(self):
        with pytest.raises(ValueError):
            MachineConfig(spawn_latency=-1)


class TestSimStats:
    def test_ipc(self):
        s = SimStats(cycles=100, useful_instructions=250)
        assert s.useful_ipc == 2.5

    def test_ipc_zero_cycles(self):
        assert SimStats().useful_ipc == 0.0

    def test_prediction_accuracy(self):
        s = SimStats(
            stvp_predictions=4, stvp_correct=3, mtvp_predictions=6, mtvp_correct=3
        )
        assert s.total_predictions == 10
        assert s.prediction_accuracy == 0.6

    def test_branch_accuracy(self):
        s = SimStats(branches=100, branch_mispredicts=8)
        assert s.branch_accuracy == pytest.approx(0.92)
        assert SimStats().branch_accuracy == 1.0

    def test_memory_miss_fraction(self):
        s = SimStats(loads=50)
        s.level_counts[MemLevel.MEMORY] = 5
        assert s.memory_miss_fraction == pytest.approx(0.1)

    def test_multivalue_fraction(self):
        s = SimStats(followed_predictions=20, primary_wrong_candidate_present=5)
        assert s.multivalue_fraction == 0.25
        assert SimStats().multivalue_fraction == 0.0

    def test_summary_is_readable(self):
        s = SimStats(cycles=10, useful_instructions=20, spawns=2)
        text = s.summary()
        assert "useful IPC" in text
        assert "2.000" in text
