"""Tests for workload specs, the trace generator, and the modeled suite."""

import pytest

from repro.isa import OpClass
from repro.workloads import (
    ALL_WORKLOADS,
    AddressPattern,
    BranchModel,
    BranchSpec,
    SPEC_FP,
    SPEC_INT,
    StreamSpec,
    ValueClass,
    ValueMix,
    Workload,
    WorkloadSpec,
    get_workload,
    workload_names,
)

MINIMAL = dict(
    name="toy",
    suite="int",
    description="test",
    streams=(StreamSpec(AddressPattern.RESIDENT, 4096),),
    value_mix=(ValueMix(ValueClass.CONSTANT),),
)


class TestSpecValidation:
    def test_minimal_spec(self):
        spec = WorkloadSpec(**MINIMAL)
        assert spec.blocks >= 1

    def test_rejects_bad_suite(self):
        with pytest.raises(ValueError):
            WorkloadSpec(**{**MINIMAL, "suite": "vector"})

    def test_rejects_empty_streams(self):
        with pytest.raises(ValueError):
            WorkloadSpec(**{**MINIMAL, "streams": ()})

    def test_rejects_empty_value_mix(self):
        with pytest.raises(ValueError):
            WorkloadSpec(**{**MINIMAL, "value_mix": ()})

    def test_rejects_zero_weights(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                **{**MINIMAL, "value_mix": (ValueMix(ValueClass.CONSTANT, weight=0),)}
            )

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            StreamSpec(AddressPattern.CHASE, 4096, jump_prob=1.5)
        with pytest.raises(ValueError):
            BranchSpec(BranchModel.LOOP, 16, noise=2.0)
        with pytest.raises(ValueError):
            WorkloadSpec(**{**MINIMAL, "fp_fraction": -0.1})
        with pytest.raises(ValueError):
            WorkloadSpec(**{**MINIMAL, "data_branch_frac": 1.5})

    def test_rejects_nonpositive_region(self):
        with pytest.raises(ValueError):
            StreamSpec(AddressPattern.RESIDENT, 0)


class TestGenerator:
    def test_trace_is_deterministic(self):
        wl = Workload(WorkloadSpec(**MINIMAL))
        a = wl.trace(length=500, seed=3)
        b = wl.trace(length=500, seed=3)
        assert [(i.pc, i.op, i.addr, i.value, i.taken) for i in a] == [
            (i.pc, i.op, i.addr, i.value, i.taken) for i in b
        ]

    def test_seed_changes_dynamics_not_structure(self):
        wl = Workload(WorkloadSpec(**MINIMAL))
        a = wl.trace(length=500, seed=1)
        b = wl.trace(length=500, seed=2)
        assert [i.pc for i in a] == [i.pc for i in b]
        assert [i.op for i in a] == [i.op for i in b]

    def test_exact_length(self):
        wl = Workload(WorkloadSpec(**MINIMAL))
        assert len(wl.trace(length=137)) == 137

    def test_rejects_bad_length(self):
        wl = Workload(WorkloadSpec(**MINIMAL))
        with pytest.raises(ValueError):
            wl.trace(length=0)

    def test_static_pcs_repeat_across_iterations(self):
        wl = Workload(WorkloadSpec(**MINIMAL))
        trace = wl.trace(length=wl.body_length * 3)
        pcs = [i.pc for i in trace]
        assert pcs[: wl.body_length] == pcs[wl.body_length : 2 * wl.body_length]

    def test_instruction_mix_contains_all_kinds(self):
        wl = Workload(WorkloadSpec(**MINIMAL))
        ops = {i.op for i in wl.trace(length=500)}
        assert OpClass.LOAD in ops
        assert OpClass.STORE in ops
        assert OpClass.BRANCH in ops
        assert OpClass.INT_ALU in ops

    def test_fp_fraction_produces_fp_ops(self):
        spec = WorkloadSpec(**{**MINIMAL, "fp_fraction": 0.8})
        wl = Workload(spec)
        ops = [i.op for i in wl.trace(length=500)]
        fp = sum(1 for o in ops if o.is_fp)
        assert fp > len(ops) * 0.2

    def test_resident_addresses_stay_in_region(self):
        wl = Workload(WorkloadSpec(**MINIMAL))
        base, size = wl.stream_regions()[0]
        for inst in wl.trace(length=500):
            if inst.addr is not None:
                assert base <= inst.addr < base + size + 64

    def test_constant_values_are_constant_per_pc(self):
        wl = Workload(WorkloadSpec(**MINIMAL))
        by_pc: dict[int, set[int]] = {}
        for inst in wl.trace(length=800):
            if inst.op is OpClass.LOAD:
                by_pc.setdefault(inst.pc, set()).add(inst.value)
        assert all(len(values) == 1 for values in by_pc.values())

    def test_serial_chase_has_loop_carried_pointer(self):
        spec = WorkloadSpec(
            **{
                **MINIMAL,
                "streams": (StreamSpec(AddressPattern.CHASE, 1 << 20, stride=512),),
                "serial_address": True,
            }
        )
        wl = Workload(spec)
        trace = wl.trace(length=300)
        self_dep = [i for i in trace if i.op is OpClass.LOAD and i.dst in i.srcs]
        assert self_dep, "expected at least one loop-carried pointer load"


class TestSuite:
    def test_suite_composition(self):
        assert len(SPEC_INT) == 17
        assert len(SPEC_FP) == 15
        assert len(ALL_WORKLOADS) == 32

    def test_figure_benchmarks_present(self):
        for name in ("mcf", "vpr r", "swim", "parser", "art 1", "crafty"):
            assert name in ALL_WORKLOADS

    def test_get_workload_caches(self):
        assert get_workload("mcf") is get_workload("mcf")

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("quake3")

    def test_workload_names_filter(self):
        assert workload_names("int") == SPEC_INT
        assert workload_names("fp") == SPEC_FP
        assert workload_names() == ALL_WORKLOADS
        with pytest.raises(ValueError):
            workload_names("simd")

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_every_workload_generates(self, name):
        wl = get_workload(name)
        trace = wl.trace(length=max(300, wl.body_length))
        assert len(trace) >= 300
        loads = [i for i in trace if i.op is OpClass.LOAD]
        assert loads
        assert all(i.value is not None for i in loads)

    def test_distinct_workloads_have_distinct_memory_behaviour(self):
        resident = get_workload("crafty").trace(length=2000)
        chasing = get_workload("mcf").trace(length=2000)

        def unique_lines(t):
            return len({i.addr >> 6 for i in t if i.addr is not None})

        # a pointer chase keeps touching new lines; resident code reuses
        assert unique_lines(chasing) > unique_lines(resident)
