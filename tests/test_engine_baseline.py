"""Engine tests: baseline (no value prediction) timing behaviour."""

from repro.core import MachineConfig
from repro.isa import InstructionBuilder

from tests.conftest import alu_block, mem_miss_trace, run_engine


class TestBasics:
    def test_empty_trace_rejected(self):
        import pytest

        from repro.core.engine import Engine

        with pytest.raises(ValueError):
            Engine([], MachineConfig.hpca05_baseline(warm_caches=False))

    def test_single_instruction(self, builder, baseline_config):
        _, stats = run_engine([builder.int_alu(dst=1)], baseline_config)
        assert stats.useful_instructions == 1
        assert stats.cycles > 0

    def test_run_twice_rejected(self, builder, baseline_config):
        import pytest

        from repro.core.engine import Engine

        engine = Engine([builder.int_alu(dst=1)], baseline_config)
        engine.run()
        with pytest.raises(RuntimeError):
            engine.run()

    def test_every_instruction_counted_useful(self, builder, baseline_config):
        trace = alu_block(builder, 100)
        _, stats = run_engine(trace, baseline_config)
        assert stats.useful_instructions == 100
        assert stats.wasted_instructions == 0


class TestThroughput:
    def test_independent_alus_run_at_high_ipc(self, builder, baseline_config):
        trace = alu_block(builder, 600)
        _, stats = run_engine(trace, baseline_config)
        # 6 int issue ports; expect IPC well above scalar
        assert stats.useful_ipc > 3.0

    def test_serial_chain_runs_at_one_per_cycle(self, builder, baseline_config):
        trace = [builder.int_alu(dst=1, srcs=(1,)) for _ in range(400)]
        _, stats = run_engine(trace, baseline_config)
        assert 0.7 < stats.useful_ipc < 1.3


class TestMemoryLatency:
    def test_cold_miss_costs_about_memory_latency(self, builder, baseline_config):
        trace = [builder.load(dst=1, addr=1 << 33, value=5)]
        trace += [builder.int_alu(dst=2, srcs=(1,))]
        _, stats = run_engine(trace, baseline_config)
        assert stats.cycles >= baseline_config.mem_latency

    def test_independent_misses_overlap(self, builder, baseline_config):
        trace = mem_miss_trace(builder, loads=6, dependents=1, fillers=4)
        _, stats = run_engine(trace, baseline_config)
        # six independent 1000-cycle misses must overlap in the window
        assert stats.cycles < 2.2 * baseline_config.mem_latency

    def test_l1_hits_after_warm_line(self, builder, baseline_config):
        addr = 1 << 33
        trace = [builder.load(dst=1, addr=addr, value=5)]
        trace += [builder.load(dst=2, addr=addr, value=5) for _ in range(20)]
        _, stats = run_engine(trace, baseline_config)
        from repro.memory import MemLevel

        assert stats.level_counts[MemLevel.MEMORY] == 1


class TestWindowLimits:
    def test_rob_bounds_overlap_across_misses(self, builder):
        # two misses separated by more than a ROB of fillers cannot overlap
        small = MachineConfig.hpca05_baseline(
            warm_caches=False, rob_size=32, rename_regs=64, iq_size=32
        )
        ib = builder
        trace = [ib.load(dst=1, addr=1 << 33, value=5)]
        trace += alu_block(ib, 64, dst_base=2)
        trace += [ib.load(dst=1, addr=(1 << 33) + (1 << 20), value=6)]
        _, stats = run_engine(trace, small)
        assert stats.cycles > 1.8 * small.mem_latency

    def test_bigger_window_recovers_overlap(self, builder):
        big = MachineConfig.hpca05_baseline(warm_caches=False)
        ib = builder
        trace = [ib.load(dst=1, addr=1 << 33, value=5)]
        trace += alu_block(ib, 64, dst_base=2)
        trace += [ib.load(dst=1, addr=(1 << 33) + (1 << 20), value=6)]
        _, stats = run_engine(trace, big)
        assert stats.cycles < 1.5 * big.mem_latency


class TestBranches:
    def _branch_trace(self, ib, outcomes):
        trace = []
        for i, taken in enumerate(outcomes):
            trace.extend(alu_block(ib, 6, dst_base=1))
            trace.append(ib.branch(taken=taken, srcs=(1,), pc=0x9000))
        return trace

    def test_predictable_branches_cost_little(self, builder, baseline_config):
        trace = self._branch_trace(builder, [True] * 60)
        _, stats = run_engine(trace, baseline_config)
        assert stats.branches == 60
        assert stats.branch_accuracy > 0.9

    def test_mispredicts_slow_the_machine(self, builder):
        import random

        rng = random.Random(3)
        cfg = MachineConfig.hpca05_baseline(warm_caches=False)
        good = self._branch_trace(builder, [True] * 60)
        bad = self._branch_trace(builder, [rng.random() < 0.5 for _ in range(60)])
        _, s_good = run_engine(good, cfg)
        _, s_bad = run_engine(bad, MachineConfig.hpca05_baseline(warm_caches=False))
        assert s_bad.branch_mispredicts > s_good.branch_mispredicts
        assert s_bad.cycles > s_good.cycles


class TestStores:
    def test_nonspeculative_stores_bypass_store_buffer(self, builder, baseline_config):
        trace = [builder.store(addr=0x8000 + 8 * i, srcs=(), value=i) for i in range(10)]
        engine, stats = run_engine(trace, baseline_config)
        assert stats.stores == 10
        assert len(engine.store_buffer) == 0

    def test_store_then_load_hits_cache(self, builder, baseline_config):
        trace = [
            builder.store(addr=1 << 33, srcs=(), value=1),
            builder.load(dst=1, addr=1 << 33, value=1),
        ]
        _, stats = run_engine(trace, baseline_config)
        from repro.memory import MemLevel

        assert stats.level_counts[MemLevel.L1] == 1
