"""Engine tests: spawn-only mode, fetch policies, wide window, accounting."""

from repro.core import FetchPolicy, MachineConfig, SimMode
from repro.select import AlwaysSelector, MissOracleSelector
from repro.vp import OraclePredictor

from tests.conftest import FixedPredictor, alu_block, run_engine


def spaced_misses(ib, n=4, work=50):
    trace = []
    for i in range(n):
        trace.append(ib.load(dst=1, addr=(1 << 33) + i * (1 << 22), value=5 + i))
        trace += alu_block(ib, work, dst_base=2)
    return trace


class TestSpawnOnly:
    def test_spawn_only_never_uses_values(self, builder):
        trace = spaced_misses(builder)
        cfg = MachineConfig.spawn_only(8, warm_caches=False)
        _, stats = run_engine(
            trace, cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert stats.spawns > 0
        # spawn-only predictions are always "confirmed" (no value risk)
        assert stats.kills == 0
        assert stats.mtvp_correct == 0  # not value predictions
        assert stats.useful_instructions == len(trace)

    def test_spawn_only_weaker_than_mtvp(self, builder):
        trace = spaced_misses(builder, n=6, work=80)
        so_cfg = MachineConfig.spawn_only(8, warm_caches=False)
        mtvp_cfg = MachineConfig.mtvp(8, warm_caches=False)
        _, so = run_engine(
            trace, so_cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        _, mtvp = run_engine(
            trace, mtvp_cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        # value prediction breaks the dependence; spawning alone does not
        assert mtvp.useful_ipc >= so.useful_ipc

    def test_spawn_only_ignores_selector_stvp(self, builder):
        trace = spaced_misses(builder, n=2)
        cfg = MachineConfig.spawn_only(8, warm_caches=False)
        _, stats = run_engine(
            trace, cfg, predictor=OraclePredictor(), selector=MissOracleSelector()
        )
        assert stats.stvp_predictions == 0


class TestFetchPolicies:
    def test_no_stall_parent_keeps_running(self, builder):
        trace = spaced_misses(builder, n=3, work=40)
        cfg = MachineConfig.mtvp(
            8, warm_caches=False, fetch_policy=FetchPolicy.NO_STALL
        )
        _, stats = run_engine(
            trace, cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        # parent duplicated work past the load is discarded on confirm
        assert stats.confirms > 0
        assert stats.wasted_instructions > 0
        assert stats.useful_instructions == len(trace)

    def test_no_stall_recovers_faster_from_mispredicts(self, builder):
        """The one advantage of no-stall: a head start after mispredicts."""
        trace = spaced_misses(builder, n=3, work=40)
        results = {}
        for policy in (FetchPolicy.SINGLE_FETCH_PATH, FetchPolicy.NO_STALL):
            cfg = MachineConfig.mtvp(8, warm_caches=False, fetch_policy=policy)
            _, stats = run_engine(
                trace, cfg, predictor=FixedPredictor(offset=1),
                selector=AlwaysSelector(),
            )
            results[policy] = stats
            assert stats.useful_instructions == len(trace)
        assert (
            results[FetchPolicy.NO_STALL].cycles
            <= results[FetchPolicy.SINGLE_FETCH_PATH].cycles
        )

    def test_single_fetch_path_wins_with_correct_predictions(self, builder):
        trace = spaced_misses(builder, n=6, work=80)
        results = {}
        for policy in (FetchPolicy.SINGLE_FETCH_PATH, FetchPolicy.NO_STALL):
            cfg = MachineConfig.mtvp(8, warm_caches=False, fetch_policy=policy)
            _, stats = run_engine(
                trace, cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
            )
            results[policy] = stats
        assert (
            results[FetchPolicy.SINGLE_FETCH_PATH].useful_ipc
            >= results[FetchPolicy.NO_STALL].useful_ipc
        )


class TestWideWindow:
    def test_wide_window_overlaps_independent_misses(self, builder):
        ib = builder
        # misses spaced past the normal ROB: a 256-window machine cannot
        # overlap them, an 8K-window machine can
        trace = []
        for i in range(4):
            trace.append(ib.load(dst=1, addr=(1 << 33) + i * (1 << 22), value=5))
            trace += alu_block(ib, 300, dst_base=2)
        normal = MachineConfig.hpca05_baseline(warm_caches=False)
        wide = MachineConfig.wide_window(warm_caches=False)
        _, s_normal = run_engine(trace, normal)
        _, s_wide = run_engine(trace, wide)
        assert s_wide.useful_ipc > s_normal.useful_ipc * 1.5

    def test_wide_window_cannot_break_serial_dependences(self, builder):
        ib = builder
        # a serial pointer chase: each load's address depends on its
        # predecessor; window size is irrelevant, value prediction is not
        trace = []
        for i in range(4):
            trace.append(
                ib.load(dst=1, srcs=(1,), addr=(1 << 33) + i * (1 << 22), value=5)
            )
            trace += alu_block(ib, 20, dst_base=2)
        wide = MachineConfig.wide_window(warm_caches=False)
        mtvp = MachineConfig.mtvp(8, warm_caches=False)
        _, s_wide = run_engine(trace, wide)
        _, s_mtvp = run_engine(
            trace, mtvp, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert s_mtvp.useful_ipc > s_wide.useful_ipc * 1.5


class TestAccountingInvariants:
    def test_useful_equals_trace_length_all_modes(self, builder):
        trace = spaced_misses(builder, n=4, work=30)
        configs = [
            MachineConfig.hpca05_baseline(warm_caches=False),
            MachineConfig.stvp(warm_caches=False),
            MachineConfig.mtvp(2, warm_caches=False),
            MachineConfig.mtvp(8, warm_caches=False),
            MachineConfig.spawn_only(4, warm_caches=False),
            MachineConfig.wide_window(warm_caches=False),
            MachineConfig.mtvp(
                8, warm_caches=False, fetch_policy=FetchPolicy.NO_STALL
            ),
        ]
        for cfg in configs:
            for predictor in (OraclePredictor(), FixedPredictor(offset=1)):
                _, stats = run_engine(
                    list(trace), cfg, predictor=predictor, selector=AlwaysSelector()
                )
                assert stats.useful_instructions == len(trace), cfg.mode
                assert stats.cycles > 0

    def test_mode_normalizes_context_count(self):
        cfg = MachineConfig(mode=SimMode.BASELINE, num_contexts=8)
        assert cfg.num_contexts == 1

    def test_cycles_monotone_in_memory_latency(self, builder):
        trace = spaced_misses(builder, n=3, work=30)
        slow = MachineConfig.hpca05_baseline(warm_caches=False, mem_latency=2000)
        fast = MachineConfig.hpca05_baseline(warm_caches=False, mem_latency=500)
        _, s_slow = run_engine(list(trace), slow)
        _, s_fast = run_engine(list(trace), fast)
        assert s_slow.cycles > s_fast.cycles
