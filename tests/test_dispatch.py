"""Distributed sweep execution: dispatchers, workers, and chaos.

Covers the Dispatcher seam end to end (DESIGN.md §5i):

* mode resolution — ``get_dispatcher`` maps policy modes to
  implementations and passes ready instances through;
* all three dispatch modes produce byte-identical ``sweep report``
  output for the same spec;
* the standalone worker entrypoint (``python -m repro.sweep.worker``)
  drains a store over its CLI and emits a final JSON counter line;
* the kill-a-worker chaos drill: a 4-worker campaign survives a SIGKILL
  mid-flight — survivors reclaim the dead worker's stale leases, every
  row commits exactly once (the ``commits`` ledger proves it), attempts
  stay within the retry budget, and the report matches the
  single-process reference byte for byte.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.dispatch import (
    Dispatcher,
    LocalDispatcher,
    PoolDispatcher,
    WorkerDispatcher,
    get_dispatcher,
)
from repro.harness.cache import ResultCache
from repro.harness.policy import ExecutionPolicy
from repro.sweep import ResultStore, aggregate, full_report, run_sweep
from repro.sweep.execute import campaign_rows
from repro.sweep.spec import SweepSpec


def _spec(name: str, *, axis=(1,), seeds=(0, 1), length=400) -> SweepSpec:
    return SweepSpec.from_dict({
        "name": name,
        "axes": {"spawn_latency": list(axis)},
        "base": {"machine": "mtvp", "threads": 2,
                 "predictor": "wang-franklin"},
        "workloads": ["mcf"],
        "seeds": list(seeds),
        "lengths": [length],
    })


def _report(store: ResultStore, name: str) -> str:
    return full_report(name, aggregate(store.rows(name)))


class TestDispatcherResolution:
    def test_modes_map_to_implementations(self):
        assert isinstance(
            get_dispatcher(ExecutionPolicy(dispatch="local")), LocalDispatcher)
        assert isinstance(
            get_dispatcher(ExecutionPolicy(dispatch="pool")), PoolDispatcher)
        assert isinstance(
            get_dispatcher(ExecutionPolicy(dispatch="workers")),
            WorkerDispatcher)

    def test_auto_settles_on_job_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISPATCH", raising=False)
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert isinstance(get_dispatcher(ExecutionPolicy()), LocalDispatcher)
        assert isinstance(
            get_dispatcher(ExecutionPolicy(jobs=3)), PoolDispatcher)

    def test_ready_instances_pass_through(self):
        mine = WorkerDispatcher(workers=1)
        assert get_dispatcher(ExecutionPolicy(dispatch=mine)) is mine

    def test_implementations_satisfy_the_protocol(self):
        for impl in (LocalDispatcher(), PoolDispatcher(), WorkerDispatcher()):
            assert isinstance(impl, Dispatcher)


class TestModeAgreement:
    """local, pool and workers: one spec, three stores, one report."""

    def test_all_dispatch_modes_produce_identical_reports(self, tmp_path):
        spec = _spec("agree")
        reports = {}
        for mode, policy in (
            ("local", ExecutionPolicy(dispatch="local", cache=False)),
            ("pool", ExecutionPolicy(dispatch="pool", jobs=2, cache=False)),
            ("workers", ExecutionPolicy(
                dispatch="workers", workers=2, cache=False,
                stale_after=30.0, heartbeat=1.0)),
        ):
            with ResultStore(tmp_path / f"{mode}.db") as store:
                summary = run_sweep(spec, store, policy=policy)
                assert summary.complete, f"{mode} left the campaign short"
                reports[mode] = _report(store, "agree")
        assert reports["local"] == reports["pool"] == reports["workers"]


class TestWorkerEntrypoint:
    """The standalone ``python -m repro.sweep.worker`` CLI."""

    def test_single_worker_drains_a_prepared_store(self, tmp_path):
        from repro.dispatch.workers import _repro_pythonpath

        spec = _spec("solo")
        path = tmp_path / "solo.db"
        with ResultStore(path) as store:
            store.ensure("solo", campaign_rows(spec))
            total = len(store.rows("solo"))
        env = dict(os.environ)
        env["PYTHONPATH"] = _repro_pythonpath()
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sweep.worker",
             "--db", str(path), "--sweep", "solo", "--worker-id", "t0",
             "--no-cache", "--stale-after", "30", "--heartbeat", "1",
             "--quiet"],
            capture_output=True, text=True, timeout=300, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        counters = json.loads(proc.stdout.strip().splitlines()[-1])
        assert counters["worker"] == "t0"
        assert counters["simulated"] == total
        assert counters["lost"] == 0
        with ResultStore(path) as store:
            assert store.counts("solo")["done"] == total
            ledger = store.commit_stats("solo")
            assert ledger["max_commits"] == 1

    def test_worker_on_a_drained_store_is_a_noop(self, tmp_path):
        from repro.dispatch.workers import _repro_pythonpath

        spec = _spec("noop", seeds=(0,))
        path = tmp_path / "noop.db"
        with ResultStore(path) as store:
            run_sweep(spec, store,
                      policy=ExecutionPolicy(dispatch="local", cache=False))
        env = dict(os.environ)
        env["PYTHONPATH"] = _repro_pythonpath()
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sweep.worker",
             "--db", str(path), "--sweep", "noop", "--no-cache", "--quiet"],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        counters = json.loads(proc.stdout.strip().splitlines()[-1])
        assert counters["simulated"] == 0
        with ResultStore(path) as store:
            assert store.commit_stats("noop")["max_commits"] == 1


class TestWorkerChaos:
    """Satellite: SIGKILL one of four workers mid-campaign."""

    def test_campaign_survives_a_sigkilled_worker(self, tmp_path):
        spec = _spec("chaos", axis=(1, 8), seeds=(0, 1, 2), length=40000)
        path = tmp_path / "chaos.db"
        cache = ResultCache(tmp_path / "cache")
        dispatcher = WorkerDispatcher(workers=4, poll=0.05)
        policy = ExecutionPolicy(
            dispatch=dispatcher, retries=1, jobs=1, cache=cache,
            stale_after=2.0, heartbeat=0.25,
        )
        outcome: dict = {}

        def campaign() -> None:
            try:
                with ResultStore(path) as store:
                    outcome["summary"] = run_sweep(spec, store, policy=policy)
            except Exception as exc:  # noqa: BLE001 — surfaced by assert
                outcome["error"] = exc

        runner = threading.Thread(target=campaign)
        runner.start()
        try:
            # wait for real work to be in flight, then murder a worker
            with ResultStore(path) as watch:
                deadline = time.time() + 60.0
                while time.time() < deadline and runner.is_alive():
                    counts = watch.counts("chaos")
                    if dispatcher.procs and counts.get("running", 0):
                        break
                    time.sleep(0.02)
            dispatcher.procs[0].kill()  # SIGKILL, no cleanup
        finally:
            runner.join(timeout=480)
        assert not runner.is_alive(), "campaign never finished after the kill"
        assert "error" not in outcome, f"campaign raised: {outcome.get('error')}"
        assert outcome["summary"].complete

        with ResultStore(path) as store:
            rows = store.rows("chaos")
            assert all(r["status"] == "done" for r in rows)
            # retry budget: first claim + at most one reclaim of the
            # murdered worker's leases
            assert max(r["attempts"] for r in rows) <= 2, (
                [(r["point_id"], r["seed"], r["attempts"]) for r in rows])
            ledger = store.commit_stats("chaos")
            assert ledger["done"] == len(rows)
            assert ledger["max_commits"] == 1, (
                "a row was committed twice — exactly-once broke")
            chaos_report = _report(store, "chaos")

        # byte-identical to a single-process reference (sharing the cache,
        # so reclaimed rows also prove cache recovery: the reference run
        # simulates nothing new)
        with ResultStore(tmp_path / "ref.db") as ref_store:
            ref = run_sweep(
                spec, ref_store,
                policy=ExecutionPolicy(dispatch="local", cache=cache),
            )
            assert ref.complete
            ref_report = _report(ref_store, "chaos")
        assert chaos_report == ref_report


class TestWorkerSupervision:
    def test_exhausted_campaign_spawns_and_converges(self, tmp_path):
        """Workers racing a store where rows are mostly done: clean exit,
        no respawn storm (spawned stays within budget)."""
        spec = _spec("tail", seeds=(0,))
        path = tmp_path / "tail.db"
        with ResultStore(path) as store:
            run_sweep(spec, store,
                      policy=ExecutionPolicy(dispatch="local", cache=False))
        dispatcher = WorkerDispatcher(workers=2, poll=0.05)
        with ResultStore(path) as store:
            summary = run_sweep(
                spec, store,
                policy=ExecutionPolicy(
                    dispatch=dispatcher, cache=False,
                    stale_after=5.0, heartbeat=0.5),
            )
        assert summary.complete
        assert summary.simulated == 0
        assert dispatcher.spawned <= 2 + 2 * 2  # initial + respawn budget
