"""Tests for the composable ExecutionModel layer (repro.core.modes).

The mode seam extracted the per-SimMode behaviour of the staged engine
into strategy objects.  These tests pin the seam down from four sides:

* the registry — every paper mode plus the two new models resolve by
  name and by enum, as singletons, from both spellings of the package;
* golden identity — the strategy-object reimplementation of the paper
  modes reproduces the pre-refactor golden stats digests bit for bit;
* SMT — independent co-scheduled programs interfere through the shared
  pools and report per-context attribution;
* SpMT — Prophet-style branch spawns fork ahead, confirm on correct
  spawn-branch prediction, squash on incorrect, and conserve the
  architectural instruction count either way.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro import MachineConfig, _steady_state_footprint, simulate
from repro.core import Engine, SimMode
from repro.core.modes import MODELS, get, names, resolve_model
from repro.select import AlwaysSelector, IlpPredSelector
from repro.vp import OraclePredictor, WangFranklinPredictor
from repro.workloads import TraceSet, get_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_stats.json"
GOLDEN = {
    name: fx
    for name, fx in json.loads(GOLDEN_PATH.read_text()).items()
    if "lanes" not in fx
}

PREDICTORS = {"wang_franklin": WangFranklinPredictor, "oracle": OraclePredictor}
SELECTORS = {"ilp_pred": IlpPredSelector, "always": AlwaysSelector}

ALL_MODE_KEYS = {"baseline", "stvp", "spawn_only", "mtvp", "smt", "spmt"}


def _canonical_stats(stats) -> dict:
    d = stats.to_dict()
    d.pop("instructions_stepped", None)
    return d


def _digest(d: dict) -> str:
    blob = json.dumps(d, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class TestRegistry:
    def test_every_mode_is_registered(self):
        assert set(names()) == ALL_MODE_KEYS
        assert set(MODELS.names()) == ALL_MODE_KEYS

    def test_resolution_by_enum_and_by_name_is_the_same_singleton(self):
        for mode in SimMode:
            by_enum = resolve_model(mode)
            by_name = resolve_model(mode.value)
            assert by_enum is by_name
            assert type(by_enum) is get(mode.value)
            assert by_enum.key == mode.value

    def test_top_level_alias_package(self):
        import repro.modes as alias

        assert set(alias.names()) == ALL_MODE_KEYS
        assert alias.resolve_model("mtvp") is resolve_model(SimMode.MTVP)

    def test_unknown_mode_rejected(self):
        with pytest.raises(KeyError):
            get("prophet-2")

    def test_capability_flags(self):
        assert resolve_model("baseline").single_context
        assert resolve_model("stvp").single_context
        for key in ("mtvp", "spawn_only", "spmt"):
            assert resolve_model(key).spawn_capable, key
        assert not resolve_model("smt").uses_value_prediction
        assert resolve_model("smt").multi_program
        assert resolve_model("spmt").spawn_on_branches
        # the lane-batched lockstep kernel cannot replay either new model
        assert not resolve_model("smt").lockstep_safe
        assert not resolve_model("spmt").lockstep_safe
        for key in ("baseline", "stvp", "spawn_only", "mtvp"):
            assert resolve_model(key).lockstep_safe, key

    def test_single_context_models_clamp_config(self):
        cfg = MachineConfig(mode=SimMode.BASELINE, num_contexts=8)
        assert cfg.num_contexts == 1
        cfg = MachineConfig(mode=SimMode.SMT, num_contexts=4)
        assert cfg.num_contexts == 4

    def test_spmt_skip_validated(self):
        with pytest.raises(ValueError, match="spmt_skip"):
            MachineConfig(mode=SimMode.SPMT, spmt_skip=0)


class TestGoldenIdentity:
    """The strategy objects reproduce the enum-era goldens bit for bit."""

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_paper_mode_digest_unchanged(self, name):
        fx = GOLDEN[name]
        cname, kwargs = fx["config"]
        config = getattr(MachineConfig, cname)(**kwargs)
        workload = get_workload(fx["workload"])
        trace = workload.trace(length=fx["length"], seed=fx["seed"])
        warm = (
            _steady_state_footprint(workload, config)
            if config.warm_caches
            else None
        )
        engine = Engine(
            trace,
            config,
            predictor=PREDICTORS[fx["predictor"]](),
            selector=SELECTORS[fx["selector"]](),
            warm_addresses=warm,
        )
        got = _canonical_stats(engine.run())
        assert _digest(got) == fx["digest"], (
            f"strategy-object refactor changed golden {name!r}"
        )


class TestSmtCoSchedule:
    LENGTH = 3000

    def _solo_cycles(self, workload: str, seed: int) -> int:
        stats = simulate(
            workload,
            MachineConfig.hpca05_baseline(),
            length=self.LENGTH,
            seed=seed,
        )
        return stats.cycles

    def test_per_context_attribution(self):
        stats = simulate(
            "mcf", MachineConfig.smt(programs=2), length=self.LENGTH
        )
        assert len(stats.per_context) == 2
        for i, row in enumerate(stats.per_context):
            assert row["stream"] == i
            assert row["instructions"] == self.LENGTH
            assert row["cycles"] > 0
            assert row["ipc"] == pytest.approx(
                row["instructions"] / row["cycles"], abs=1e-5
            )
        assert stats.useful_instructions == 2 * self.LENGTH
        assert stats.cycles == max(r["cycles"] for r in stats.per_context)
        # no speculation machinery runs in the co-schedule
        assert stats.spawns == 0 and stats.total_predictions == 0

    def test_co_scheduled_programs_interfere(self):
        # same two dynamic streams, solo and co-scheduled: sharing the
        # group-0 fetch/rename/IQ/issue pools and the hierarchy must not
        # speed anyone up, and must slow at least one stream down
        stats = simulate(
            "mcf", MachineConfig.smt(programs=2), length=self.LENGTH
        )
        solo = [self._solo_cycles("mcf", seed) for seed in (0, 1)]
        co = [row["cycles"] for row in stats.per_context]
        assert all(c >= s for c, s in zip(co, solo))
        assert any(c > s for c, s in zip(co, solo))

    def test_trace_set_input_adapts_context_count(self):
        traces = TraceSet(
            name="pair",
            traces=(
                get_workload("mcf").trace(length=800, seed=0),
                get_workload("gzip g").trace(length=800, seed=0),
            ),
            labels=("mcf", "gzip"),
        )
        stats = simulate(traces, MachineConfig.smt(programs=8))
        assert len(stats.per_context) == 2
        assert stats.useful_instructions == 1600

    def test_warmup_rejected(self):
        with pytest.raises(ValueError, match="warmup"):
            simulate("mcf", MachineConfig.smt(), length=500, warmup=100)

    def test_single_explicit_trace_rejected(self):
        trace = get_workload("mcf").trace(length=300)
        with pytest.raises(TypeError, match="TraceSet or a workload"):
            simulate(trace, MachineConfig.smt())

    def test_engine_trace_count_must_match_contexts(self):
        trace = get_workload("mcf").trace(length=300)
        with pytest.raises(ValueError, match="one program per context"):
            Engine(trace, MachineConfig.smt(programs=2))


class TestSpmt:
    def _run(self, workload="mcf", length=3000, **overrides):
        return simulate(
            workload, MachineConfig.spmt(threads=8, **overrides), length=length
        )

    def test_spawns_and_conservation(self):
        stats = self._run()
        assert stats.spmt_spawns > 0
        assert stats.spawns == stats.spmt_spawns
        assert stats.spmt_squashes <= stats.spmt_spawns
        assert stats.confirms + stats.spmt_squashes <= stats.spmt_spawns
        # closure accounting: every trace position commits architecturally
        # exactly once, whether the parent or a confirmed child ran it
        assert stats.useful_instructions == 3000

    def test_squashes_on_mispredicted_spawn_branches(self, builder):
        # a branch whose outcome flips from a seeded pattern defeats the
        # predictor often enough that some spawns carry validity 0
        import random

        rng = random.Random(9)
        trace = []
        for _ in range(120):
            for _ in range(10):
                trace.append(builder.int_alu(dst=1))
            trace.append(builder.branch(taken=rng.random() < 0.5, pc=0x500))
        stats = simulate(trace, MachineConfig.spmt(threads=4, spmt_skip=8))
        assert stats.spmt_spawns > 0
        assert stats.spmt_squashes > 0
        assert stats.useful_instructions == len(trace)

    def test_predictable_branches_mostly_confirm(self, builder):
        trace = []
        for _ in range(200):
            for _ in range(6):
                trace.append(builder.int_alu(dst=1))
            trace.append(builder.branch(taken=True, pc=0x600))
        stats = simulate(trace, MachineConfig.spmt(threads=4, spmt_skip=8))
        assert stats.spmt_spawns > 0
        assert stats.confirms > stats.spmt_squashes
        assert stats.useful_instructions == len(trace)

    def test_no_spawn_past_trace_end(self, builder):
        # the only branch sits so close to the end that the skip distance
        # would start the child beyond the trace: no spawn may happen
        trace = [builder.int_alu(dst=1) for _ in range(50)]
        trace.append(builder.branch(taken=True))
        trace.extend(builder.int_alu(dst=1) for _ in range(5))
        stats = simulate(trace, MachineConfig.spmt(threads=4, spmt_skip=48))
        assert stats.spmt_spawns == 0
        assert stats.useful_instructions == len(trace)

    def test_spawn_speeds_up_vs_baseline(self):
        spmt = self._run()
        base = simulate("mcf", MachineConfig.hpca05_baseline(), length=3000)
        # pre-computed live-ins make confirmed forks pure lookahead; the
        # run must not be slower than serial execution
        assert spmt.cycles <= base.cycles

    def test_snapshot_roundtrip_mid_spawn(self):
        # full-scope checkpointing must carry the position-triggered
        # resolution state (resolve_pos) through serialization
        config = MachineConfig.spmt(threads=4)
        trace = get_workload("mcf").trace(length=2000, seed=3)

        def fresh():
            return Engine(trace, config)

        straight = fresh().run()

        paused = fresh()
        assert paused.run(max_steps=700) is None
        payload = paused.snapshot(scope="full")
        resumed_engine = fresh()
        resumed_engine.restore(payload)
        resumed = resumed_engine.run()
        assert _canonical_stats(resumed) == _canonical_stats(straight)

    def test_stats_fields_absent_for_paper_modes(self):
        stats = simulate("mcf", MachineConfig.mtvp(threads=4), length=1000)
        d = stats.to_dict()
        assert "spmt_spawns" not in d
        assert "per_context" not in d


class TestBatchingGuards:
    def test_new_modes_refuse_the_lockstep_kernel(self):
        from repro.core.engine.batch import batchable

        trace = get_workload("mcf").trace(length=400)
        spmt_engine = Engine(trace, MachineConfig.spmt(threads=4))
        assert not batchable(spmt_engine)
        smt_engine = Engine(
            trace, MachineConfig.smt(programs=2), traces=[trace, trace]
        )
        assert not batchable(smt_engine)

    def test_simulate_batch_falls_back_scalar_for_spmt(self):
        from repro.harness.runner import RunSpec, simulate_batch

        spec = RunSpec(
            "spmt",
            lambda: MachineConfig.spmt(threads=4),
            predictor_factory="oracle",
            selector_factory="always",
        )
        batched = simulate_batch("mcf", spec, length=800, seeds=(0, 1))
        scalar = [spec.run("mcf", 800, s) for s in (0, 1)]
        assert [_canonical_stats(b) for b in batched] == [
            _canonical_stats(s) for s in scalar
        ]


class TestSweepAndServerSeams:
    def test_sweep_presets_for_new_modes(self):
        from repro.sweep.spec import run_spec_for

        spec = run_spec_for({"machine": "smt", "threads": 2})
        cfg = spec.config_factory()
        assert cfg.mode is SimMode.SMT and cfg.num_contexts == 2
        spec = run_spec_for(
            {"machine": "spmt", "threads": 4, "spmt_skip": 16}
        )
        cfg = spec.config_factory()
        assert cfg.mode is SimMode.SPMT
        assert cfg.num_contexts == 4 and cfg.spmt_skip == 16

    @pytest.mark.parametrize(
        "spec_file", ["smt_coschedule.toml", "spmt_spawn.toml"]
    )
    def test_checked_in_sweep_specs_smoke(self, spec_file, tmp_path):
        import dataclasses

        from repro.sweep import ResultStore, load_spec, run_sweep

        spec = load_spec(
            Path(__file__).parent.parent / "sweeps" / spec_file
        )
        spec = dataclasses.replace(spec, seeds=(0,), lengths=(1200,))
        with ResultStore(tmp_path / "s.db") as store:
            summary = run_sweep(spec, store, cache=False, max_points=2)
        assert summary.done == summary.total > 0
        assert summary.failed == 0
