"""Unit tests for the hybrid Wang-Franklin value predictor."""

from repro.isa import InstructionBuilder
from repro.vp import WangFranklinPredictor
from repro.vp.wang_franklin import SLOT_ONE, SLOT_STRIDE, SLOT_ZERO


def loads(values, pc=0x1000):
    ib = InstructionBuilder()
    return [ib.load(dst=1, addr=0x8000 + 8 * i, value=v, pc=pc) for i, v in enumerate(values)]


def train_seq(p, values, pc=0x1000):
    for inst in loads(values, pc):
        p.train(inst, inst.value)


class TestBasicPrediction:
    def test_cold_pc_predicts_nothing(self):
        p = WangFranklinPredictor()
        assert p.predict(loads([5])[0]) is None

    def test_constant_value_learned(self):
        p = WangFranklinPredictor()
        train_seq(p, [77] * 20)
        pred = p.predict(loads([77])[0])
        assert pred is not None and pred.value == 77

    def test_confidence_threshold_respected(self):
        p = WangFranklinPredictor(threshold=12)
        train_seq(p, [77] * 5)  # only 5 correct => confidence 5 < 12
        assert p.predict(loads([77])[0]) is None

    def test_hardwired_zero_slot(self):
        p = WangFranklinPredictor()
        train_seq(p, [0] * 20)
        pred = p.predict(loads([0])[0])
        assert pred.value == 0 and pred.slot == SLOT_ZERO

    def test_hardwired_one_slot(self):
        p = WangFranklinPredictor()
        train_seq(p, [1] * 20)
        pred = p.predict(loads([1])[0])
        assert pred.value == 1 and pred.slot == SLOT_ONE

    def test_stride_slot(self):
        p = WangFranklinPredictor()
        train_seq(p, list(range(100, 400, 10)))
        pred = p.predict(loads([400])[0])
        assert pred is not None
        assert pred.slot == SLOT_STRIDE
        assert pred.value == 400


class TestConfidenceDynamics:
    def test_penalty_is_heavier_than_bonus(self):
        p = WangFranklinPredictor(threshold=12, bonus=1, penalty=8)
        train_seq(p, [5] * 20)  # saturated-ish confidence
        assert p.predict(loads([5])[0]) is not None
        # two wrong values knock 16 off the counter
        train_seq(p, [9991, 9992])
        assert p.predict(loads([5])[0]) is None

    def test_liberal_parameterization_keeps_more_candidates(self):
        import random

        # a noisy mix of two values: the pattern index cannot cleanly
        # separate the contexts, so every ValPHT entry sees both values;
        # only a liberal penalty lets several slots stay over threshold
        rng = random.Random(13)
        noisy = [rng.choice([10, 20]) for _ in range(120)]
        strict = WangFranklinPredictor(threshold=12, penalty=8)
        liberal = WangFranklinPredictor(threshold=4, penalty=0)
        train_seq(strict, noisy)
        train_seq(liberal, noisy)
        probe = loads([10])[0]
        assert len(liberal.predict_all(probe)) > len(strict.predict_all(probe))


class TestMultiValue:
    def test_predict_all_orders_by_confidence(self):
        p = WangFranklinPredictor(threshold=1, penalty=1)
        train_seq(p, [5] * 12 + [9] * 4 + [5] * 12)
        candidates = p.predict_all(loads([5])[0])
        assert len(candidates) >= 1
        confidences = [c.confidence for c in candidates]
        assert confidences == sorted(confidences, reverse=True)

    def test_predict_all_deduplicates_values(self):
        p = WangFranklinPredictor(threshold=1, penalty=1)
        train_seq(p, [0] * 20)  # zero is learned AND hardwired
        candidates = p.predict_all(loads([0])[0])
        assert len({c.value for c in candidates}) == len(candidates)

    def test_pattern_values_all_represented(self):
        import random

        # noisy rotation keeps every value alive in several contexts
        rng = random.Random(7)
        seq = [rng.choice([11, 22, 33]) for _ in range(200)]
        p = WangFranklinPredictor(threshold=2, penalty=0)
        train_seq(p, seq)
        candidates = p.predict_all(loads([11])[0])
        values = {c.value for c in candidates}
        assert {11, 22, 33} <= values


class TestLearnedValueLru:
    def test_more_than_five_values_evicts_oldest(self):
        p = WangFranklinPredictor(threshold=1, penalty=0)
        train_seq(p, [1000, 2000, 3000, 4000, 5000, 6000])
        entry = p._vht_entry(0x1000, allocate=False)
        assert len(entry.values) == 5
        assert 1000 not in entry.values
        assert 6000 in entry.values

    def test_reuse_moves_to_mru(self):
        p = WangFranklinPredictor()
        train_seq(p, [1000, 2000, 1000])
        entry = p._vht_entry(0x1000, allocate=False)
        assert entry.values[-1] == 1000


class TestSpeculativeUpdate:
    def test_speculative_update_advances_stride_head(self):
        p = WangFranklinPredictor(threshold=1)
        train_seq(p, list(range(0, 200, 10)))
        probe = loads([200])[0]
        pred = p.predict(probe)
        assert pred.value == 200
        p.speculative_update(probe, 200)
        pred2 = p.predict(loads([210])[0])
        assert pred2.value == 210

    def test_commit_training_resyncs_after_speculation(self):
        p = WangFranklinPredictor(threshold=1)
        train_seq(p, list(range(0, 200, 10)))
        probe = loads([200])[0]
        p.speculative_update(probe, 200)
        p.train(probe, 200)
        entry = p._vht_entry(0x1000, allocate=False)
        assert entry.stride == 10
        assert entry.last_committed == 200


class TestAliasing:
    def test_distinct_pcs_do_not_interfere(self):
        p = WangFranklinPredictor()
        train_seq(p, [5] * 20, pc=0x1000)
        train_seq(p, [9] * 20, pc=0x2000)
        assert p.predict(loads([5], pc=0x1000)[0]).value == 5
        assert p.predict(loads([9], pc=0x2000)[0]).value == 9
