"""Concurrency regressions for the shared stores (DESIGN.md §5g).

These tests pin the bugfix sweep that made the harness's persistent
state safe to share — between threads of the campaign server, and
between independent campaign processes pointed at the same files:

* :class:`~repro.sweep.store.ResultStore` — concurrent leasing through
  separate connections must never raise ``database is locked`` and must
  never hand one ``(point, seed)`` to two workers;
* stale-claim reclaim — a ``stale_after`` window plus heartbeats keeps
  a live-but-slow worker's rows from being stolen by a concurrent
  resume, while genuinely crashed claims still age out;
* :class:`~repro.harness.cache.ResultCache` /
  :class:`~repro.harness.checkpoint.CheckpointStore` — files vanishing
  mid-scan and truncated/corrupt entries are misses (with the corrupt
  file deleted), never crashes.
"""

from __future__ import annotations

import pickle
import sqlite3
import threading
import time

import pytest

from repro.core import SimStats
from repro.harness.cache import ResultCache
from repro.harness.checkpoint import CheckpointStore
from repro.sweep.store import ResultStore


def seed_rows(n_points: int = 4, n_seeds: int = 4) -> list[dict]:
    return [
        {
            "point_id": f"p{p}",
            "seed": s,
            "workload": "mcf",
            "length": 500,
            "params": {"p": p},
            "idx": p,
        }
        for p in range(n_points)
        for s in range(n_seeds)
    ]


class TestConcurrentLeasing:
    """Satellite 1: many workers, separate connections, one store file."""

    def test_racing_claims_are_disjoint_and_never_locked(self, tmp_path):
        """8 threads × own connection, all trying to claim every row:
        every row is claimed exactly once overall, and no thread sees
        'database is locked'."""
        path = tmp_path / "lease.db"
        rows = seed_rows(4, 4)
        with ResultStore(path) as setup:
            setup.ensure("s", rows)
        keys = [(r["point_id"], r["seed"]) for r in rows]
        won: dict[int, list] = {}
        errors: list[Exception] = []
        barrier = threading.Barrier(8)

        def worker(wid: int) -> None:
            try:
                with ResultStore(path) as store:
                    barrier.wait()
                    won[wid] = store.claim("s", keys, stale_after=60.0)
            except Exception as exc:  # noqa: BLE001 — recorded for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, f"claiming raised: {errors}"
        all_claims = [k for claims in won.values() for k in claims]
        assert len(all_claims) == len(set(all_claims)), "a row was double-claimed"
        assert sorted(all_claims) == sorted(keys), "some row went unclaimed"

    def test_lease_commit_hammer_no_locked_no_double_run(self, tmp_path):
        """Workers loop claim→mark_done until the sweep drains.  No
        'database is locked', and every row ends done with attempts == 1
        — the proof that no (point, seed) ever ran twice."""
        path = tmp_path / "hammer.db"
        rows = seed_rows(5, 4)
        with ResultStore(path) as setup:
            setup.ensure("s", rows)
        errors: list[Exception] = []

        def worker() -> None:
            try:
                with ResultStore(path, busy_timeout=30.0) as store:
                    while True:
                        todo = store.runnable("s", stale_after=60.0)
                        if not todo:
                            return
                        keys = [(r["point_id"], r["seed"]) for r in todo[:3]]
                        for key in store.claim("s", keys, stale_after=60.0):
                            store.mark_done("s", key, {"cycles": 1})
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, f"hammer raised: {errors}"
        with ResultStore(path) as store:
            final = store.rows("s")
            assert all(r["status"] == "done" for r in final)
            assert all(r["attempts"] == 1 for r in final), (
                "attempts != 1 means a row was simulated more than once: "
                + str([(r["point_id"], r["seed"], r["attempts"]) for r in final]))

    def test_store_is_wal_with_busy_timeout(self, tmp_path):
        store = ResultStore(tmp_path / "w.db", busy_timeout=7.5)
        mode = store._db.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode in ("wal", "memory")  # memory: fs refused WAL
        (timeout_ms,) = store._db.execute("PRAGMA busy_timeout").fetchone()
        assert timeout_ms == 7500
        store.close()

    def test_cross_thread_use_of_one_connection(self, tmp_path):
        """check_same_thread=False + the internal lock: one store object
        used from several threads at once works."""
        store = ResultStore(tmp_path / "x.db")
        store.ensure("s", seed_rows(2, 2))
        errors = []

        def reader() -> None:
            try:
                for _ in range(50):
                    store.counts("s")
                    store.rows("s")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def writer() -> None:
            try:
                for i in range(50):
                    store.touch("s", [("p0", 0)])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=f) for f in (reader, writer, reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        store.close()
        assert not errors, f"shared-connection use raised: {errors}"


class TestStaleReclaim:
    """Satellite 3: the reclaim window vs live-but-slow workers."""

    def test_live_claim_is_not_stealable_within_window(self, tmp_path):
        store = ResultStore(tmp_path / "s.db")
        store.ensure("s", seed_rows(1, 1))
        assert store.claim("s", [("p0", 0)], stale_after=60.0) == [("p0", 0)]
        # a concurrent resume with a window sees nothing to do...
        assert store.runnable("s", stale_after=60.0) == []
        assert store.claim("s", [("p0", 0)], stale_after=60.0) == []
        # ...but the legacy no-window caller (crash resume) still reclaims
        assert len(store.runnable("s")) == 1
        store.close()

    def test_stale_claim_ages_out_and_is_reclaimed(self, tmp_path):
        store = ResultStore(tmp_path / "s.db")
        store.ensure("s", seed_rows(1, 1))
        store.claim("s", [("p0", 0)], stale_after=60.0)
        # backdate the heartbeat past the window: the claim is dead
        with store._db:
            store._db.execute(
                "UPDATE results SET updated_at = updated_at - 120.0"
            )
        assert [
            (r["point_id"], r["seed"]) for r in store.runnable("s", stale_after=60.0)
        ] == [("p0", 0)]
        assert store.claim("s", [("p0", 0)], stale_after=60.0) == [("p0", 0)]
        (attempts,) = store._db.execute(
            "SELECT attempts FROM results"
        ).fetchone()
        assert attempts == 2  # reclaim is a new attempt
        store.close()

    def test_heartbeat_keeps_slow_worker_alive_under_concurrent_resume(
        self, tmp_path
    ):
        """A slow worker holds a claim and heartbeats on a short period; a
        concurrent resume loop with a *very* short staleness window runs
        alongside for many windows' worth of time and must never steal the
        row.  Without the heartbeat the same setup steals immediately."""
        path = tmp_path / "slow.db"
        store = ResultStore(path)
        store.ensure("s", seed_rows(1, 1))
        key = ("p0", 0)
        assert store.claim("s", [key], stale_after=0.2) == [key]
        stop = threading.Event()

        def heartbeat() -> None:  # the slow worker's sidecar
            while not stop.wait(0.05):
                store.touch("s", [key])

        beat = threading.Thread(target=heartbeat)
        beat.start()
        try:
            stolen = []
            with ResultStore(path) as rival:
                deadline = time.time() + 1.0  # five windows
                while time.time() < deadline:
                    stolen.extend(rival.claim("s", [key], stale_after=0.2))
                    time.sleep(0.02)
            assert stolen == [], "a live heartbeating claim was stolen"
        finally:
            stop.set()
            beat.join()
        # the slow worker eventually commits — its result stands
        store.mark_done("s", key, {"cycles": 9})
        assert store.counts("s")["done"] == 1
        (attempts,) = store._db.execute("SELECT attempts FROM results").fetchone()
        assert attempts == 1
        store.close()

    def test_without_heartbeat_short_window_does_steal(self, tmp_path):
        """Control for the test above: no heartbeat → the rival wins."""
        store = ResultStore(tmp_path / "s.db")
        store.ensure("s", seed_rows(1, 1))
        key = ("p0", 0)
        store.claim("s", [key], stale_after=0.05)
        time.sleep(0.1)
        assert store.claim("s", [key], stale_after=0.05) == [key]
        store.close()

    def test_touch_does_not_revive_committed_rows(self, tmp_path):
        store = ResultStore(tmp_path / "s.db")
        store.ensure("s", seed_rows(1, 1))
        key = ("p0", 0)
        store.claim("s", [key])
        store.mark_done("s", key, {"cycles": 3})
        store.touch("s", [key])  # late heartbeat from the old owner
        assert store.counts("s")["done"] == 1
        store.close()

    def test_claim_cutoff_ignores_python_clock_skew(self, tmp_path, monkeypatch):
        """Regression: the staleness cutoff is computed by the database
        clock at statement-execution time, never from a ``time.time()``
        sample taken python-side.  A python-side sample can be arbitrarily
        stale by the time the claim statement actually executes (it may
        have waited out a long write lock), which would steal rows whose
        heartbeat arrived in between.  Skewing ``time.time`` 999 seconds
        forward must therefore change nothing: the freshly-touched row
        stays unstealable."""
        store = ResultStore(tmp_path / "skew.db")
        store.ensure("s", seed_rows(1, 1))
        key = ("p0", 0)
        assert store.claim("s", [key], stale_after=5.0, owner="live") == [key]
        assert store.touch("s", [key], owner="live") == 1
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() + 999.0)
        assert store.claim("s", [key], stale_after=5.0, owner="rival") == []
        assert store.runnable("s", stale_after=5.0) == []
        # the live owner's commit still lands, exactly once
        assert store.mark_done("s", key, {"cycles": 1}, owner="live")
        assert store.commit_stats("s") == {
            "done": 1, "commits": 1, "max_commits": 1,
        }
        store.close()

    def test_slow_worker_vs_aggressive_reclaim_hammer(self, tmp_path):
        """A slow worker heartbeats its leases on a short period while
        three rivals hammer claim() with an aggressive staleness window
        for many windows' worth of time: the rivals must come away empty,
        and the slow worker's owner-conditional commits must all land."""
        path = tmp_path / "aggr.db"
        store = ResultStore(path)
        rows = seed_rows(2, 2)
        store.ensure("s", rows)
        keys = [(r["point_id"], r["seed"]) for r in rows]
        assert sorted(store.claim(
            "s", keys, stale_after=0.2, owner="slow")) == sorted(keys)
        stop = threading.Event()
        stolen: list = []
        errors: list[Exception] = []

        def heartbeat() -> None:
            while not stop.wait(0.05):
                store.touch("s", keys, owner="slow")

        def rival(wid: int) -> None:
            try:
                with ResultStore(path) as mine:
                    while not stop.is_set():
                        got = mine.claim(
                            "s", keys, stale_after=0.2, owner=f"r{wid}")
                        stolen.extend(got)
                        time.sleep(0.01)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=heartbeat)]
        threads += [threading.Thread(target=rival, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        time.sleep(1.0)  # five windows
        stop.set()
        for t in threads:
            t.join()
        assert not errors, f"rival claims raised: {errors}"
        assert stolen == [], "an actively heartbeating lease was stolen"
        for key in keys:
            assert store.mark_done("s", key, {"cycles": 1}, owner="slow")
        ledger = store.commit_stats("s")
        assert ledger == {"done": 4, "commits": 4, "max_commits": 1}
        final = store.rows("s")
        assert all(r["attempts"] == 1 for r in final)
        store.close()


class TestOwnerConditionalCommits:
    """Owner tokens: a superseded lease can never commit or heartbeat."""

    def test_stale_owner_cannot_commit_over_the_reclaimer(self, tmp_path):
        store = ResultStore(tmp_path / "o.db")
        store.ensure("s", seed_rows(1, 1))
        key = ("p0", 0)
        assert store.claim("s", [key], owner="w1") == [key]
        # w1 goes silent; the row ages out and w2 reclaims it
        with store._db:
            store._db.execute(
                "UPDATE results SET updated_at = updated_at - 120.0")
        assert store.claim("s", [key], stale_after=60.0, owner="w2") == [key]
        # w1 wakes up and tries to win the race: every verb is refused
        assert store.touch("s", [key], owner="w1") == 0
        assert not store.mark_done("s", key, {"cycles": 7}, owner="w1")
        assert not store.mark_failed("s", key, "late", owner="w1")
        # w2's commit is the one that lands — exactly once
        assert store.mark_done("s", key, {"cycles": 9}, owner="w2")
        assert store.commit_stats("s") == {
            "done": 1, "commits": 1, "max_commits": 1,
        }
        import json as _json

        (stats_text,) = [r["stats"] for r in store.rows("s")]
        assert _json.loads(stats_text)["cycles"] == 9
        store.close()

    def test_release_returns_rows_to_the_pool_without_an_attempt(
        self, tmp_path
    ):
        """Work shedding: releasing an unstarted lease puts the row back
        to pending and refunds the attempt, so a stolen row doesn't burn
        the retry budget."""
        store = ResultStore(tmp_path / "r.db")
        store.ensure("s", seed_rows(1, 2))
        keys = [("p0", 0), ("p0", 1)]
        assert sorted(store.claim("s", keys, owner="w1")) == sorted(keys)
        assert store.release("s", [("p0", 1)], owner="w1") == 1
        # a wrong-owner release is refused
        assert store.release("s", [("p0", 0)], owner="rival") == 0
        counts = store.counts("s")
        assert counts["pending"] == 1 and counts["running"] == 1
        # the released row is claimable immediately, at attempt 1 again
        assert store.claim("s", [("p0", 1)], owner="w2") == [("p0", 1)]
        attempts = {
            (r["point_id"], r["seed"]): r["attempts"] for r in store.rows("s")
        }
        assert attempts == {("p0", 0): 1, ("p0", 1): 1}
        store.close()


def _stats() -> SimStats:
    stats = SimStats()
    stats.cycles = 42
    stats.instructions_stepped = 100
    return stats


class TestCacheCorruption:
    """Satellite 2: the result cache under concurrent pruning/corruption."""

    def test_corrupt_entry_is_miss_and_deleted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k" * 64, _stats())
        path = cache._path("k" * 64)
        path.write_text('{"stats": {"cycles"')  # truncated write
        assert cache.get("k" * 64) is None
        assert cache.misses == 1
        assert not path.exists(), "corrupt entry must be deleted"
        # the slot re-fills cleanly
        cache.put("k" * 64, _stats())
        assert cache.get("k" * 64) is not None

    def test_wrong_shape_json_is_miss_and_deleted(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache._path("a" * 64)
        path.write_text('{"not_stats": 1}')
        assert cache.get("a" * 64) is None
        assert not path.exists()

    def test_vanished_entry_is_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("b" * 64) is None
        assert cache.misses == 1

    def test_prune_tolerates_files_vanishing_mid_scan(
        self, tmp_path, monkeypatch
    ):
        """A second pruner (or clear()) unlinking a file between prune's
        scan and its eviction must not raise, and the eviction still
        counts — the bytes are gone either way."""
        from pathlib import Path

        cache = ResultCache(tmp_path)
        for i in range(4):
            cache.put(f"{i}" * 64, _stats())
        real_unlink = Path.unlink
        raced = []

        def racy_unlink(self, *args, **kwargs):
            if not raced and self.suffix == ".json":
                raced.append(self)
                real_unlink(self)          # the rival evicts it first...
                raise FileNotFoundError(self)  # ...and we hit the race
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", racy_unlink)
        removed = cache.prune(max_bytes=0)
        assert raced, "the race was never exercised"
        assert removed == 4  # 3 real + 1 already-gone, all accounted
        assert list(tmp_path.glob("*.json")) == []

    def test_put_recreates_vanished_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "sub")
        import shutil

        shutil.rmtree(cache.directory)
        cache.put("c" * 64, _stats())
        assert cache.get("c" * 64) is not None

    def test_concurrent_get_put_prune_hammer(self, tmp_path):
        """Readers, writers and a pruner on one directory: no exceptions."""
        cache = ResultCache(tmp_path)
        errors: list[Exception] = []
        stop = threading.Event()

        def writer() -> None:
            try:
                i = 0
                while not stop.is_set():
                    cache.put(f"{i % 8:064d}", _stats())
                    i += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def reader() -> None:
            try:
                i = 0
                while not stop.is_set():
                    cache.get(f"{i % 8:064d}")
                    i += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def pruner() -> None:
            try:
                while not stop.is_set():
                    cache.prune(max_bytes=256)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=f) for f in (writer, reader, pruner, reader)
        ]
        for t in threads:
            t.start()
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join()
        assert not errors, f"concurrent cache traffic raised: {errors}"


class TestCheckpointCorruption:
    """Satellite 2, checkpoint half: arch-state pickles."""

    def test_truncated_pickle_is_miss_and_deleted(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("k1", {"arch": {"pc": 7}, "warmup": 100})
        path = store._path("k1")
        path.write_bytes(path.read_bytes()[:10])  # truncate mid-stream
        assert store.get("k1") is None
        assert store.misses == 1
        assert not path.exists(), "corrupt checkpoint must be deleted"
        store.put("k1", {"arch": {"pc": 8}, "warmup": 100})
        assert store.get("k1")["arch"]["pc"] == 8

    def test_garbage_bytes_are_miss_and_deleted(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store._path("k2").write_bytes(b"not a pickle at all")
        assert store.get("k2") is None
        assert not store._path("k2").exists()

    def test_unpicklable_reference_is_miss_and_deleted(self, tmp_path):
        """A checkpoint pickled against a class that no longer exists
        (code changed between runs) unpickles with AttributeError — that
        must be a miss, not a crash."""
        store = CheckpointStore(tmp_path)
        # hand-craft a pickle referencing a bogus global
        payload = b"\x80\x04\x95\x1e\x00\x00\x00\x00\x00\x00\x00\x8c\x08__main__\x94\x8c\x0bNoSuchClass\x94\x93\x94."
        store._path("k3").write_bytes(payload)
        assert store.get("k3") is None
        assert not store._path("k3").exists()

    def test_vanished_checkpoint_is_plain_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.get("gone") is None
        assert store.misses == 1

    def test_put_recreates_vanished_directory(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        import shutil

        shutil.rmtree(store.directory)
        store.put("k4", {"arch": {}, "warmup": 0})
        assert store.get("k4") is not None


class TestConcurrentSweeps:
    """Two run_sweep campaigns over one store: every row exactly once."""

    def test_two_campaigns_share_one_store_without_double_runs(self, tmp_path):
        from repro.sweep.execute import run_sweep
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec.from_dict({
            "name": "dual",
            "axes": {"threads": [2, 4]},
            "base": {"machine": "mtvp"},
            "workloads": ["mcf"],
            "seeds": [0, 1],
            "lengths": [400],
        })
        path = tmp_path / "dual.db"
        cache = ResultCache(tmp_path / "cache")
        summaries = {}
        errors: list[Exception] = []

        def campaign(name: str) -> None:
            try:
                with ResultStore(path) as store:
                    summaries[name] = run_sweep(
                        spec, store, cache=cache,
                        stale_after=30.0, heartbeat=1.0,
                    )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=campaign, args=(n,)) for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, f"concurrent campaigns raised: {errors}"
        with ResultStore(path) as store:
            final = store.rows("dual")
            assert all(r["status"] == "done" for r in final)
            assert all(r["attempts"] == 1 for r in final), (
                "a (point, seed) was simulated by both campaigns: "
                + str([(r["point_id"], r["seed"], r["attempts"]) for r in final]))
        # both campaigns report the full sweep as complete
        assert summaries["a"].complete and summaries["b"].complete
