"""Property-based tests (hypothesis) for core data structures and invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.branch import TwoBcGskewPredictor, update_history
from repro.core import MachineConfig, SlotAllocator
from repro.isa import Instruction, InstructionBuilder, OpClass
from repro.memory import Cache, MemoryHierarchy, StoreBuffer
from repro.select import AlwaysSelector
from repro.vp import StridePredictor, WangFranklinPredictor

from tests.conftest import FixedPredictor, run_engine

addresses = st.integers(min_value=0, max_value=(1 << 40) - 1)
values64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestCacheProperties:
    @given(st.lists(addresses, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = Cache(4096, 2, line_size=64)
        for a in addrs:
            cache.insert(a)
        assert cache.occupancy <= 4096 // 64

    @given(st.lists(addresses, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_insert_then_probe_is_present(self, addrs):
        cache = Cache(64 * 1024, 8, line_size=64)
        for a in addrs:
            cache.insert(a)
            assert cache.probe(a)

    @given(st.lists(addresses, min_size=1, max_size=100), st.integers(0, 99))
    @settings(max_examples=30, deadline=None)
    def test_lookup_miss_then_hit(self, addrs, pick):
        cache = Cache(1 << 20, 16, line_size=64)
        for a in addrs:
            if not cache.lookup(a):
                cache.insert(a)
        target = addrs[pick % len(addrs)]
        assert cache.probe(target)


class TestHierarchyProperties:
    @given(st.lists(st.tuples(addresses, st.integers(0, 10000)), min_size=1,
                    max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_completion_never_before_access(self, accesses):
        h = MemoryHierarchy(mem_latency=500)
        for addr, now in accesses:
            complete, _level = h.load(addr, 0x100, now)
            assert complete >= now

    @given(st.lists(addresses, min_size=2, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_level_counts_sum_to_accesses(self, addrs):
        h = MemoryHierarchy()
        for i, a in enumerate(addrs):
            h.load(a, 0x100, i * 10)
        assert sum(h.level_counts.values()) == h.accesses == len(addrs)


class TestStoreBufferProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(0, 100), addresses, values64),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_total_tracks_alloc_release(self, stores):
        sb = StoreBuffer(capacity=32)
        accepted = 0
        for owner, pos, addr, value in stores:
            if sb.allocate(owner, pos, addr, value, 0):
                accepted += 1
        assert len(sb) == accepted <= 32
        drained = sum(len(sb.confirm_thread(o)) for o in range(1, 5))
        assert drained == accepted
        assert len(sb) == 0

    @given(
        st.lists(
            st.tuples(st.integers(1, 3), st.integers(0, 50), addresses, values64),
            min_size=1,
            max_size=40,
        ),
        addresses,
    )
    @settings(max_examples=50, deadline=None)
    def test_search_result_is_visible_and_older(self, stores, probe_addr):
        sb = StoreBuffer(capacity=None)
        for owner, pos, addr, value in stores:
            sb.allocate(owner, pos, addr, value, 0)
        hit = sb.search(probe_addr, visible=(1, 2), trace_pos=25)
        if hit is not None:
            assert hit.owner in (1, 2)
            assert hit.trace_pos < 25
            assert hit.addr >> 3 == probe_addr >> 3


class TestAllocatorProperties:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200),
           st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_capacity_respected_and_result_ge_request(self, requests, capacity):
        alloc = SlotAllocator(capacity)
        booked: dict[int, int] = {}
        for t in requests:
            got = alloc.acquire(t)
            assert got >= t
            booked[got] = booked.get(got, 0) + 1
        assert all(count <= capacity for count in booked.values())


class TestPredictorProperties:
    @given(st.lists(values64, min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_wang_franklin_never_crashes_and_learns_constants(self, tail):
        ib = InstructionBuilder()
        p = WangFranklinPredictor(threshold=4)
        for i, v in enumerate(tail):
            inst = ib.load(dst=1, addr=0x8000 + 8 * i, value=v, pc=0x1000)
            p.predict(inst)
            p.train(inst, v)
        # after any history, a long constant run must become predictable
        for i in range(30):
            inst = ib.load(dst=1, addr=0x9000, value=777, pc=0x1000)
            p.train(inst, 777)
        pred = p.predict(ib.load(dst=1, addr=0x9000, value=777, pc=0x1000))
        assert pred is not None and pred.value == 777

    @given(st.integers(0, (1 << 63)), st.integers(1, 1 << 30))
    @settings(max_examples=40, deadline=None)
    def test_stride_predictor_extrapolates_any_stride(self, start, stride):
        ib = InstructionBuilder()
        p = StridePredictor(threshold=2)
        mask = (1 << 64) - 1
        for i in range(5):
            v = (start + i * stride) & mask
            p.train(ib.load(dst=1, addr=0x8000, value=v, pc=0x1000), v)
        pred = p.predict(ib.load(dst=1, addr=0x8000, value=0, pc=0x1000))
        assert pred is not None
        assert pred.value == (start + 5 * stride) & mask


class TestBranchHistoryProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_history_is_pure_function_of_outcomes(self, outcomes):
        h1 = h2 = 0
        for taken in outcomes:
            h1 = update_history(h1, taken)
            h2 = update_history(h2, taken)
        assert h1 == h2
        assert 0 <= h1 < (1 << 16)

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_predictor_update_never_crashes(self, outcomes):
        bp = TwoBcGskewPredictor()
        hist = 0
        for taken in outcomes:
            bp.predict(0x4000, hist)
            bp.update(0x4000, hist, taken)
            hist = update_history(hist, taken)


class TestPointIdProperties:
    """The sweep/search stacks key every store row, cache entry and
    promotion decision on point_id — it must be a pure content hash:
    invariant to params key order and identical across processes."""

    param_keys = st.sampled_from(
        ["machine", "threads", "spawn_latency", "store_buffer_entries",
         "predictor", "selector", "fetch_policy"]
    )
    param_values = st.one_of(
        st.integers(0, 1 << 16), st.text(max_size=12), st.booleans()
    )

    @given(
        st.dictionaries(param_keys, param_values, min_size=1, max_size=7),
        st.sampled_from(["mcf", "crafty", "swim"]),
        st.integers(1, 100000),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariant_to_params_key_order(self, params, workload, length, rnd):
        from repro.sweep.spec import point_id

        items = list(params.items())
        rnd.shuffle(items)
        shuffled = dict(items)
        assert list(shuffled) != list(params) or shuffled == params
        assert point_id(shuffled, workload, length) == point_id(
            params, workload, length
        )

    @given(
        st.dictionaries(param_keys, param_values, min_size=1, max_size=5),
        st.integers(1, 100000),
    )
    @settings(max_examples=40, deadline=None)
    def test_seedless_identity_separates_points(self, params, length):
        from repro.sweep.spec import point_id

        # changing any identity ingredient changes the id...
        base = point_id(params, "mcf", length)
        assert base != point_id(params, "crafty", length)
        assert base != point_id(params, "mcf", length + 1)
        # ...and the id is a stable 16-hex-digit digest
        assert len(base) == 16 and int(base, 16) >= 0

    def test_stable_across_processes(self):
        """The id of a fixed recipe must match both a golden literal
        (guarding the hash recipe against accidental change) and a
        fresh interpreter (no per-process salting a la PYTHONHASHSEED)."""
        import subprocess
        import sys

        from repro.sweep.spec import point_id

        params = {"machine": "mtvp", "threads": 8, "spawn_latency": 16}
        local = point_id(params, "mcf", 5000)
        assert local == "dc83bdd4810ebe6d"  # golden: the recipe is frozen

        code = (
            "from repro.sweep.spec import point_id; "
            "print(point_id({'spawn_latency': 16, 'threads': 8, "
            "'machine': 'mtvp'}, 'mcf', 5000), end='')"
        )
        fresh = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
            cwd=str(__import__("pathlib").Path(__file__).parent.parent),
        )
        assert fresh.stdout == local


class TestEngineProperties:
    @staticmethod
    def _random_trace(ops):
        ib = InstructionBuilder()
        trace = []
        for kind, a, b in ops:
            if kind == 0:
                trace.append(ib.load(dst=1 + a % 8, addr=(1 << 33) + b * 64, value=b))
            elif kind == 1:
                trace.append(ib.store(addr=(1 << 33) + b * 64, srcs=(1 + a % 8,), value=b))
            elif kind == 2:
                trace.append(ib.int_alu(dst=1 + a % 8, srcs=(1 + b % 8,)))
            else:
                trace.append(ib.branch(taken=bool(b & 1), srcs=(1 + a % 8,)))
        return trace

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 7), st.integers(0, 63)),
            min_size=1,
            max_size=80,
        ),
        st.sampled_from(["baseline", "stvp", "mtvp", "spawn_only"]),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_trace_any_mode_accounts_exactly(self, ops, mode, wrong):
        """The global invariant: every instruction becomes architectural
        exactly once, under any mode, with any prediction quality."""
        trace = self._random_trace(ops)
        cfg = {
            "baseline": MachineConfig.hpca05_baseline,
            "stvp": MachineConfig.stvp,
            "mtvp": lambda **kw: MachineConfig.mtvp(4, **kw),
            "spawn_only": lambda **kw: MachineConfig.spawn_only(4, **kw),
        }[mode](warm_caches=False)
        predictor = FixedPredictor(offset=1 if wrong else 0)
        _, stats = run_engine(trace, cfg, predictor=predictor, selector=AlwaysSelector())
        assert stats.useful_instructions == len(trace)
        assert stats.cycles > 0
        assert stats.wasted_instructions >= 0
