"""Unit tests for the oracle predictor and the ValuePredictor base."""

from repro.isa import InstructionBuilder
from repro.vp import OraclePredictor
from repro.vp.base import ValuePrediction, ValuePredictor


class TestOracle:
    def test_always_predicts_the_actual_value(self):
        ib = InstructionBuilder()
        p = OraclePredictor()
        for v in (0, 1, 42, (1 << 64) - 1):
            inst = ib.load(dst=1, addr=0x8000, value=v)
            pred = p.predict(inst)
            assert pred is not None
            assert pred.value == v
            assert pred.confidence == OraclePredictor.MAX_CONFIDENCE

    def test_ignores_non_loads(self):
        ib = InstructionBuilder()
        p = OraclePredictor()
        assert p.predict(ib.int_alu(dst=1)) is None
        assert p.predict(ib.store(addr=0x10, srcs=(1,))) is None
        assert p.predict(ib.branch(taken=True)) is None

    def test_training_is_a_noop(self):
        ib = InstructionBuilder()
        p = OraclePredictor()
        inst = ib.load(dst=1, addr=0x8000, value=9)
        p.train(inst, 9)
        assert p.predict(inst).value == 9

    def test_lookup_counter(self):
        ib = InstructionBuilder()
        p = OraclePredictor()
        p.predict(ib.load(dst=1, addr=0x8000, value=1))
        p.predict(ib.load(dst=1, addr=0x8008, value=2))
        assert p.lookups == 2


class TestBaseClass:
    def test_predict_all_defaults_to_single_best(self):
        ib = InstructionBuilder()
        p = OraclePredictor()
        candidates = p.predict_all(ib.load(dst=1, addr=0x8000, value=5))
        assert [c.value for c in candidates] == [5]

    def test_predict_all_empty_when_no_prediction(self):
        class Never(ValuePredictor):
            def predict(self, inst):
                return None

            def train(self, inst, actual):
                pass

        ib = InstructionBuilder()
        assert Never().predict_all(ib.load(dst=1, addr=0x8000, value=5)) == []

    def test_speculative_update_default_is_noop(self):
        ib = InstructionBuilder()
        p = OraclePredictor()
        p.speculative_update(ib.load(dst=1, addr=0x8000, value=5), 5)

    def test_value_prediction_repr(self):
        pred = ValuePrediction(42, 12, slot=3)
        assert "42" in repr(pred)
        assert "slot=3" in repr(pred)
