"""Tests for the repro.sweep subsystem: specs, store, stats, reports,
campaign execution, retries and crash-resume."""

import json

import pytest

from repro.harness.cache import ResultCache, task_key
from repro.sweep import (
    PointAggregate,
    ResultStore,
    SweepSpec,
    SweepSpecError,
    aggregate,
    bootstrap_ci,
    campaign_rows,
    full_report,
    load_spec,
    pareto_frontier,
    run_spec_for,
    run_sweep,
    sweep_result,
)
from repro.sweep.report import axis_marginals, export_jsonl, format_markdown

LENGTH = 500

TOML = """
[sweep]
name = "mini"
workloads = ["crafty"]
lengths = [500]
seeds = 2

[base]
machine = "mtvp"
threads = 2
predictor = "oracle"

[axes]
store_buffer_entries = [16, 64]
"""


def mini_spec(**overrides) -> SweepSpec:
    params = dict(
        name="mini",
        base={"machine": "mtvp", "threads": 2, "predictor": "oracle"},
        axes={"store_buffer_entries": [16, 64]},
        workloads=("crafty",),
        lengths=(LENGTH,),
        seeds=(0, 1),
    )
    params.update(overrides)
    return SweepSpec(**params)


class TestSweepSpec:
    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "mini.toml"
        path.write_text(TOML)
        spec = load_spec(path)
        assert spec.name == "mini"
        assert spec.seeds == (0, 1)
        assert spec.workloads == ("crafty",)
        assert [p.params["store_buffer_entries"] for p in spec.expand()] == [16, 64]
        # JSON serialization reloads to the same expansion
        jpath = tmp_path / "mini.json"
        spec.to_json(jpath)
        clone = load_spec(jpath)
        assert [p.point_id for p in clone.expand()] == [
            p.point_id for p in spec.expand()
        ]

    def test_suite_keywords_expand(self):
        from repro.workloads import SPEC_INT

        spec = mini_spec(workloads=("int",))
        assert spec.workloads == SPEC_INT

    def test_seed_count_becomes_range(self):
        assert mini_spec(seeds=3).seeds == (0, 1, 2)

    def test_unknown_axis_key_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown axis key"):
            mini_spec(axes={"not_a_field": [1]})

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            mini_spec(workloads=("no-such-workload",))

    def test_grid_order_is_workload_outer_axes_inner(self):
        spec = mini_spec(workloads=("crafty", "swim"))
        points = spec.expand()
        assert [p.workload for p in points] == ["crafty", "crafty", "swim", "swim"]
        assert [p.params["store_buffer_entries"] for p in points] == [16, 64, 16, 64]

    def test_constraints_filter_points(self):
        spec = mini_spec(
            axes={"store_buffer_entries": [16, 64], "spawn_latency": [1, 8]},
            constraints=("store_buffer_entries >= 64 or spawn_latency == 1",),
        )
        combos = [
            (p.params["store_buffer_entries"], p.params["spawn_latency"])
            for p in spec.expand()
        ]
        assert combos == [(16, 1), (64, 1), (64, 8)]

    def test_callable_constraint(self):
        spec = mini_spec(constraints=(lambda ctx: ctx["store_buffer_entries"] > 16,))
        assert [p.params["store_buffer_entries"] for p in spec.expand()] == [64]

    def test_random_mode_samples_deterministically(self):
        big = {"store_buffer_entries": [16, 32, 64, 128], "spawn_latency": [1, 8]}
        a = mini_spec(axes=big, mode="random", samples=3, sample_seed=7)
        b = mini_spec(axes=big, mode="random", samples=3, sample_seed=7)
        assert [p.point_id for p in a.expand()] == [p.point_id for p in b.expand()]
        assert len(a.expand()) == 3
        grid_ids = {p.point_id for p in mini_spec(axes=big).expand()}
        assert {p.point_id for p in a.expand()} <= grid_ids

    def test_random_mode_needs_samples(self):
        with pytest.raises(SweepSpecError, match="samples"):
            mini_spec(mode="random")

    def test_duplicate_axis_values_collapse_to_one_point(self):
        # a careless spec like [16, 16, 64] used to mint two identical
        # points (same point_id) that then collided in the result store
        spec = mini_spec(axes={"store_buffer_entries": [16, 16, 64]})
        points = spec.expand()
        assert [p.params["store_buffer_entries"] for p in points] == [16, 64]
        assert len({p.point_id for p in points}) == len(points)

    def test_random_mode_samples_from_deduped_grid(self):
        axes = {"store_buffer_entries": [16, 16, 32, 64],
                "spawn_latency": [1, 1, 8]}
        spec = mini_spec(axes=axes, mode="random", samples=6, sample_seed=3)
        points = spec.expand()
        assert len(points) == 6  # the deduped grid has 3 x 2 = 6 combos
        assert len({p.point_id for p in points}) == 6

    def test_point_id_stable_and_seedless(self):
        a, b = mini_spec().expand(), mini_spec().expand()
        assert [p.point_id for p in a] == [p.point_id for p in b]
        assert a[0].point_id != a[1].point_id

    def test_run_spec_is_cacheable_and_resolves(self):
        point = mini_spec().expand()[0]
        spec = run_spec_for(point.params)
        config = spec.config_factory()
        assert config.store_buffer_entries == 16
        assert config.num_contexts == 2
        assert task_key(point.workload, spec, point.length, 0) is not None

    def test_store_buffer_zero_means_unbounded(self):
        spec = run_spec_for({"machine": "mtvp", "store_buffer_entries": 0})
        assert spec.config_factory().store_buffer_entries is None

    def test_enum_fields_coerce_from_strings(self):
        from repro.core import FetchPolicy

        spec = run_spec_for({"machine": "mtvp", "fetch_policy": "no_stall"})
        assert spec.config_factory().fetch_policy is FetchPolicy.NO_STALL

    def test_threads_on_single_context_preset_rejected(self):
        with pytest.raises(SweepSpecError, match="single-context"):
            run_spec_for({"machine": "stvp", "threads": 4})


class TestResultStore:
    def rows(self):
        return [
            {"point_id": "p1", "seed": 0, "workload": "crafty", "length": 500,
             "params": {"x": 1}, "idx": 0},
            {"point_id": "p1", "seed": 1, "workload": "crafty", "length": 500,
             "params": {"x": 1}, "idx": 0},
        ]

    def test_ensure_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "s.db")
        assert store.ensure("s", self.rows()) == 2
        assert store.ensure("s", self.rows()) == 0
        assert len(store) == 2

    def test_status_lifecycle_and_runnable(self, tmp_path):
        store = ResultStore(tmp_path / "s.db")
        store.ensure("s", self.rows())
        assert len(store.runnable("s")) == 2
        store.mark_running("s", [("p1", 0)])
        store.mark_done("s", ("p1", 0), {"cycles": 10}, wall_seconds=0.1)
        assert [r["seed"] for r in store.runnable("s")] == [1]
        store.mark_running("s", [("p1", 1)])
        store.mark_failed("s", ("p1", 1), "boom")
        # no retry budget: the failed row is out of attempts
        assert store.runnable("s", retries=0) == []
        # one retry: attempts(1) <= retries(1) makes it runnable again
        assert [r["seed"] for r in store.runnable("s", retries=1)] == [1]
        assert store.counts("s") == {
            "pending": 0, "running": 0, "done": 1, "failed": 1,
        }

    def test_stale_running_rows_are_runnable(self, tmp_path):
        store = ResultStore(tmp_path / "s.db")
        store.ensure("s", self.rows())
        store.mark_running("s", [("p1", 0)])
        assert len(store.runnable("s")) == 2  # crashed claim is re-claimable

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "s.db"
        store = ResultStore(path)
        store.ensure("s", self.rows())
        store.mark_done("s", ("p1", 0), {"cycles": 10})
        store.close()
        reopened = ResultStore(path)
        assert reopened.counts("s")["done"] == 1
        assert reopened.sweeps() == ["s"]


class TestStats:
    def test_bootstrap_ci_is_deterministic_and_brackets_mean(self):
        values = [10.0, 12.0, 8.0, 11.0]
        lo, hi = bootstrap_ci(values)
        assert (lo, hi) == bootstrap_ci(values)
        assert lo <= sum(values) / len(values) <= hi
        assert bootstrap_ci([5.0]) == (5.0, 5.0)

    def test_bootstrap_ci_single_value_is_degenerate(self):
        assert bootstrap_ci([7.5]) == (7.5, 7.5)

    def test_bootstrap_ci_identical_values_collapse(self):
        lo, hi = bootstrap_ci([3.0, 3.0, 3.0, 3.0])
        assert lo == hi == 3.0

    def test_bootstrap_ci_confidence_orders_widths(self):
        values = [10.0, 12.0, 8.0, 11.0, 9.5]
        narrow = bootstrap_ci(values, confidence=0.5)
        default = bootstrap_ci(values)
        wide = bootstrap_ci(values, confidence=0.99)
        width = lambda ci: ci[1] - ci[0]  # noqa: E731
        assert width(narrow) <= width(default) <= width(wide)
        # the default really is the historical 95% level
        assert default == bootstrap_ci(values, confidence=0.95)

    def test_bootstrap_ci_rejects_bad_confidence(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError, match="confidence"):
                bootstrap_ci([1.0, 2.0], confidence=bad)
        with pytest.raises(ValueError, match="at least one"):
            bootstrap_ci([])

    def test_aggregate_confidence_reaches_every_point(self, tmp_path):
        wide = PointAggregate("p", 0, "w", 500, {}, {}, [0, 1, 2],
                              [10.0, 14.0, 6.0], 0, confidence=0.99)
        tight = PointAggregate("p", 0, "w", 500, {}, {}, [0, 1, 2],
                               [10.0, 14.0, 6.0], 0, confidence=0.5)
        assert wide.confidence == 0.99
        assert wide.ci_hi - wide.ci_lo >= tight.ci_hi - tight.ci_lo

    def test_straddle_flag(self):
        clear = PointAggregate("p", 0, "w", 500, {}, {}, [0, 1],
                               [10.0, 12.0, 11.0], 0)
        noisy = PointAggregate("p2", 1, "w", 500, {}, {}, [0, 1],
                               [-5.0, 6.0, -1.0], 0)
        assert not clear.straddles_zero
        assert noisy.straddles_zero

    def test_aggregate_pairs_baselines_by_workload_length_seed(self, tmp_path):
        store = ResultStore(tmp_path / "s.db")
        rows = [
            {"point_id": "pt", "seed": s, "workload": "w", "length": 100,
             "params": {"threads": 2}, "idx": 0}
            for s in (0, 1)
        ] + [
            {"point_id": "base", "seed": s, "role": "baseline", "workload": "w",
             "length": 100, "params": {}, "idx": -1}
            for s in (0, 1)
        ]
        store.ensure("s", rows)
        # baseline IPC 1.0; point IPC 1.2 (seed 0) and 0.8 (seed 1)
        store.mark_done("s", ("base", 0), {"cycles": 100, "useful_instructions": 100})
        store.mark_done("s", ("base", 1), {"cycles": 100, "useful_instructions": 100})
        store.mark_done("s", ("pt", 0), {"cycles": 100, "useful_instructions": 120},
                        config={"num_contexts": 2})
        store.mark_done("s", ("pt", 1), {"cycles": 100, "useful_instructions": 80})
        (agg,) = aggregate(store.rows("s"))
        assert agg.speedups == pytest.approx([20.0, -20.0])
        assert agg.mean == pytest.approx(0.0)
        assert agg.straddles_zero
        assert agg.contexts_used == 2


class TestReport:
    def aggs(self):
        return [
            PointAggregate("a", 0, "w", 500, {"threads": 2}, {"num_contexts": 2},
                           [0, 1], [10.0, 12.0], 0),
            PointAggregate("b", 1, "w", 500, {"threads": 4}, {"num_contexts": 4},
                           [0, 1], [11.0, 11.5], 0),
            PointAggregate("c", 2, "w", 500, {"threads": 8}, {"num_contexts": 8},
                           [0, 1], [18.0, 20.0], 0),
            PointAggregate("d", 3, "w", 500, {"threads": 16}, {"num_contexts": 16},
                           [], [], 2),  # failed point
        ]

    def test_sweep_result_columns_and_flags(self):
        result = sweep_result("t", self.aggs())
        assert "threads" in result.columns
        assert result.rows[0]["mean %"] == pytest.approx(11.0)
        assert result.rows[3]["noise?"] == "FAILED"
        assert result.summary["points failed"] == 1
        assert "format" not in result.format_table()  # smoke: renders

    def test_pareto_frontier_drops_dominated(self):
        frontier = pareto_frontier(self.aggs())
        ids = {a.point_id for a in frontier}
        # b (4 contexts, 11.25%) is dominated by a (2 contexts, 11.0%)? no:
        # a has less speedup — both survive; c pays 8 contexts for 19%.
        assert ids == {"a", "b", "c"}
        # a point strictly better than another on every axis dominates it
        worse = PointAggregate("e", 4, "w", 500, {"threads": 8},
                               {"num_contexts": 8}, [0, 1], [1.0, 1.2], 0)
        assert "e" not in {a.point_id for a in pareto_frontier(self.aggs() + [worse])}

    def test_axis_marginals(self):
        marginal = axis_marginals(self.aggs(), "threads")
        assert [r["threads"] for r in marginal.rows] == ["2", "4", "8"]
        single = axis_marginals(self.aggs()[:1], "threads")
        assert single is None

    def test_markdown_and_jsonl(self):
        text = format_markdown(sweep_result("t", self.aggs()))
        assert text.startswith("### Sweep t")
        assert "| --- " in text
        lines = export_jsonl(self.aggs()).strip().splitlines()
        assert len(lines) == 4
        parsed = json.loads(lines[0])
        assert parsed["mean"] == pytest.approx(11.0)


class TestRunSweep:
    def test_campaign_completes_and_resume_noops(self, tmp_path, monkeypatch):
        spec = mini_spec()
        store = ResultStore(tmp_path / "s.db")
        summary = run_sweep(spec, store, cache=False)
        # 2 points x 2 seeds + 1 baseline x 2 seeds
        assert summary.total == 6 and summary.complete
        assert summary.simulated == 6 and summary.skipped == 0

        import repro.harness.parallel as par

        def boom(*a):
            raise AssertionError("resume must not re-simulate done rows")

        monkeypatch.setattr(par, "_run_task", boom)
        resumed = run_sweep(spec, store, cache=False)
        assert resumed.complete and resumed.simulated == 0
        assert resumed.skipped == 6

    def test_failing_point_is_retried_then_reported(self, tmp_path):
        spec = mini_spec(
            axes={"spawn_latency": [1, -1]},  # -1 is rejected by MachineConfig
            retries=1,
        )
        store = ResultStore(tmp_path / "s.db")
        summary = run_sweep(spec, store, cache=False)
        assert summary.failed == 2  # the bad point's two seeds
        assert summary.done == summary.total - 2
        failed = [r for r in store.rows(spec.name) if r["status"] == "failed"]
        assert all(r["attempts"] == 2 for r in failed)  # first try + 1 retry
        assert all("spawn_latency" in (r["error"] or "") or "simulation failed"
                   in (r["error"] or "") for r in failed)
        # the report degrades gracefully instead of aborting
        aggs = aggregate(store.rows(spec.name))
        result = sweep_result(spec.name, aggs)
        assert result.summary["points failed"] == 1
        assert full_report(spec.name, aggs)  # renders

    def test_bad_predictor_name_marks_point_failed(self, tmp_path):
        spec = mini_spec(axes={}, base={"machine": "mtvp", "threads": 2,
                                        "predictor": "no-such-predictor"})
        store = ResultStore(tmp_path / "s.db")
        summary = run_sweep(spec, store, cache=False, retries=0)
        assert summary.failed == 2  # both seeds of the single point
        assert summary.done == 2  # baselines still ran

    def test_max_points_truncates(self, tmp_path):
        spec = mini_spec()
        store = ResultStore(tmp_path / "s.db")
        summary = run_sweep(spec, store, cache=False, max_points=1)
        # 1 point x 2 seeds + baseline x 2 seeds
        assert summary.total == 4 and summary.complete

    def test_campaign_rows_include_baselines(self):
        rows = campaign_rows(mini_spec())
        roles = [r["role"] for r in rows]
        assert roles.count("point") == 4 and roles.count("baseline") == 2

    def test_results_match_direct_simulation(self, tmp_path):
        """Sweep-stored stats must be byte-identical to a direct run."""
        spec = mini_spec(seeds=(0,))
        store = ResultStore(tmp_path / "s.db")
        run_sweep(spec, store, cache=False)
        point = spec.expand()[0]
        direct = run_spec_for(point.params).run(point.workload, point.length, 0)
        stored = next(
            json.loads(r["stats"])
            for r in store.rows(spec.name, role="point")
            if r["point_id"] == point.point_id
        )
        assert stored == direct.to_dict()


class TestCrashResume:
    """The interrupt-and-resume contract of ISSUE 4.

    Kill a campaign after N rows are committed, resume it, and require
    (a) zero re-simulation of committed rows and (b) a final report
    byte-identical to an uninterrupted run of the same sweep.
    """

    def run_interrupted(self, tmp_path, monkeypatch, kill_after, cache=False):
        spec = mini_spec()
        store = ResultStore(tmp_path / "crash.db")
        committed = 0
        real_mark_done = ResultStore.mark_done

        def dying_mark_done(self, *args, **kwargs):
            nonlocal committed
            if committed >= kill_after:
                raise KeyboardInterrupt  # the mid-campaign kill
            committed += 1
            return real_mark_done(self, *args, **kwargs)

        monkeypatch.setattr(ResultStore, "mark_done", dying_mark_done)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(spec, store, cache=cache, chunk=2)
        monkeypatch.setattr(ResultStore, "mark_done", real_mark_done)
        return spec, store, committed

    def test_resume_skips_committed_rows(self, tmp_path, monkeypatch):
        kill_after = 3
        spec, store, committed = self.run_interrupted(
            tmp_path, monkeypatch, kill_after
        )
        assert committed == kill_after
        assert store.counts(spec.name)["done"] == kill_after

        import repro.harness.parallel as par

        calls = []
        real = par._run_task
        monkeypatch.setattr(par, "_run_task", lambda *a: calls.append(a) or real(*a))
        resumed = run_sweep(spec, store, cache=False)
        assert resumed.complete
        assert resumed.skipped == kill_after
        # zero re-simulation of completed rows: only the remainder ran
        assert len(calls) == resumed.total - kill_after
        assert resumed.simulated == resumed.total - kill_after

    def test_warm_cache_serves_the_lost_chunk(self, tmp_path, monkeypatch):
        """Rows simulated before the kill but not yet committed to the
        store are free on resume: the result cache still has them."""
        cache = ResultCache(tmp_path / "cache")
        spec, store, committed = self.run_interrupted(
            tmp_path, monkeypatch, kill_after=3, cache=cache
        )
        already_cached = len(cache)  # simulations the killed run completed
        assert already_cached > committed  # some results outran their commit

        import repro.harness.parallel as par

        calls = []
        real = par._run_task
        monkeypatch.setattr(par, "_run_task", lambda *a: calls.append(a) or real(*a))
        resume_cache = ResultCache(tmp_path / "cache")
        resumed = run_sweep(spec, store, cache=resume_cache)
        assert resumed.complete
        # fresh simulations = rows the killed run never reached at all
        assert len(calls) == resumed.total - already_cached
        # and the simulated-but-uncommitted rows were pure cache hits
        assert resume_cache.hits == already_cached - committed

    def test_final_report_byte_identical_to_uninterrupted(
        self, tmp_path, monkeypatch
    ):
        spec, store, _ = self.run_interrupted(tmp_path, monkeypatch, kill_after=3)
        run_sweep(spec, store, cache=False)
        interrupted_report = full_report(spec.name, aggregate(store.rows(spec.name)))

        clean_store = ResultStore(tmp_path / "clean.db")
        run_sweep(mini_spec(), clean_store, cache=False)
        clean_report = full_report(
            spec.name, aggregate(clean_store.rows(spec.name))
        )
        assert interrupted_report == clean_report


class TestSweepCLI:
    def test_run_resume_status_report(self, tmp_path, capsys):
        from repro.__main__ import main

        spec_path = tmp_path / "mini.toml"
        spec_path.write_text(TOML)
        db = str(tmp_path / "mini.db")
        base = ["sweep", "run", str(spec_path), "--db", db, "--no-cache",
                "--seeds", "2", "--length", "500"]
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "complete" in out

        resume = ["sweep", "resume", str(spec_path), "--db", db, "--no-cache",
                  "--seeds", "2", "--length", "500"]
        assert main(resume) == 0
        assert "0 simulated" in capsys.readouterr().out

        assert main(["sweep", "status", str(spec_path), "--db", db]) == 0
        assert "done" in capsys.readouterr().out

        csv_path = tmp_path / "r.csv"
        assert main(["sweep", "report", str(spec_path), "--db", db,
                     "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "bootstrap CI" in out and "best point" in out
        assert csv_path.exists()

    def test_status_shows_axis_progress_and_json_ledger(
        self, tmp_path, capsys
    ):
        from repro.__main__ import main

        spec_path = tmp_path / "mini.toml"
        spec_path.write_text(TOML)
        db = str(tmp_path / "mini.db")
        assert main(["sweep", "run", str(spec_path), "--db", db,
                     "--no-cache"]) == 0
        capsys.readouterr()

        assert main(["sweep", "status", str(spec_path), "--db", db]) == 0
        out = capsys.readouterr().out
        # per-axis progress: every axis value reports done/total rows
        assert "axis store_buffer_entries: 16: 2/2 64: 2/2" in out
        assert "commits:" in out

        assert main(["sweep", "status", str(spec_path), "--db", db,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"] == "mini"
        assert payload["counts"]["done"] == payload["total"] == 6
        assert payload["axes"]["store_buffer_entries"]["16"] == {
            "done": 2, "total": 2,
        }
        # the commit ledger proves exactly-once: one commit per done row
        assert payload["commits"]["commits"] == payload["commits"]["done"]
        assert payload["commits"]["max_commits"] == 1
        assert payload["failed"] == []

    def test_report_without_results_fails_cleanly(self, tmp_path, capsys):
        from repro.__main__ import main

        spec_path = tmp_path / "mini.toml"
        spec_path.write_text(TOML)
        assert main(["sweep", "report", str(spec_path),
                     "--db", str(tmp_path / "empty.db")]) == 1
        assert "no results" in capsys.readouterr().out


class TestWarmupSweep:
    """The campaign-level warmup/sample protocol and checkpoint reuse."""

    def test_protocol_fields_validate(self):
        with pytest.raises(SweepSpecError):
            mini_spec(warmup=-1)
        with pytest.raises(SweepSpecError):
            mini_spec(sample=0)

    def test_protocol_fields_survive_serialization(self, tmp_path):
        spec = mini_spec(warmup=1000, sample=400)
        jpath = tmp_path / "warm.json"
        spec.to_json(jpath)
        clone = load_spec(jpath)
        assert clone.warmup == 1000 and clone.sample == 400

    def test_protocol_is_campaign_level_not_a_point_axis(self):
        # a warmed campaign must keep the point ids of the cold one, or
        # result stores could never be compared across protocols
        cold = [p.point_id for p in mini_spec().expand()]
        warm = [p.point_id for p in mini_spec(warmup=1000, sample=400).expand()]
        assert cold == warm

    def test_toml_accepts_warmup_keys(self, tmp_path):
        path = tmp_path / "warm.toml"
        path.write_text(TOML.replace(
            'seeds = 2', 'seeds = 2\nwarmup = 1000\nsample = 400'
        ))
        spec = load_spec(path)
        assert spec.warmup == 1000 and spec.sample == 400

    def test_warmed_campaign_reuses_one_checkpoint(self, tmp_path):
        from repro.harness import CheckpointStore
        from repro.sweep import ResultStore

        # the baseline must name the same predictor as the points: warmed
        # predictor tables are architectural state, so a differing one
        # would (correctly) mint its own checkpoint
        spec = mini_spec(
            seeds=(0,), warmup=1000, sample=300,
            baseline={"machine": "baseline", "predictor": "oracle"},
        )
        store = ResultStore(tmp_path / "warm.db")
        ckpts = CheckpointStore(tmp_path / "ckpt")
        summary = run_sweep(spec, store, cache=False, checkpoints=ckpts)
        # 2 points + 1 baseline, all sharing one warmed arch state: the
        # store-buffer axis (and the baseline's machine knobs) are timing
        # state, invisible to functional warmup
        assert summary.total == 3 and summary.complete
        assert ckpts.stores == 1 and ckpts.hits == 2
        assert len(ckpts) == 1

    def test_warmed_rows_shrink_to_the_sample(self, tmp_path):
        from repro.sweep import ResultStore

        spec = mini_spec(seeds=(0,), warmup=1000, sample=300)
        store = ResultStore(tmp_path / "warm.db")
        run_sweep(spec, store, cache=False)
        for row in store.rows(spec.name):
            stats = json.loads(row["stats"])
            assert stats["warmup_instructions"] == 1000
            assert stats["instructions_stepped"] >= 300
