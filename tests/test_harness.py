"""Tests for the experiment harness: metrics, runner, result formatting."""

import functools

import pytest

from repro.core import MachineConfig
from repro.harness import (
    ExperimentResult,
    ModeResult,
    RunSpec,
    compare_modes,
    geomean_speedup,
    percent_speedup,
    run_once,
)
from repro.vp import OraclePredictor


class TestMetrics:
    def test_percent_speedup(self):
        assert percent_speedup(2.0, 1.0) == pytest.approx(100.0)
        assert percent_speedup(0.5, 1.0) == pytest.approx(-50.0)
        assert percent_speedup(1.0, 1.0) == pytest.approx(0.0)

    def test_percent_speedup_rejects_zero_base(self):
        with pytest.raises(ValueError):
            percent_speedup(1.0, 0.0)

    def test_geomean_identity(self):
        assert geomean_speedup([0.0, 0.0]) == pytest.approx(0.0)

    def test_geomean_of_equal_speedups(self):
        assert geomean_speedup([100.0, 100.0, 100.0]) == pytest.approx(100.0)

    def test_geomean_mixes_gains_and_losses(self):
        # 2x and 0.5x cancel geometrically
        assert geomean_speedup([100.0, -50.0]) == pytest.approx(0.0)

    def test_geomean_below_arithmetic_mean(self):
        values = [10.0, 200.0]
        assert geomean_speedup(values) < sum(values) / 2

    def test_geomean_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean_speedup([])

    def test_geomean_rejects_total_loss(self):
        with pytest.raises(ValueError):
            geomean_speedup([-100.0])


class TestRunner:
    def test_run_once(self):
        spec = RunSpec("baseline", MachineConfig.hpca05_baseline)
        stats = run_once("crafty", spec, length=600)
        assert stats.useful_instructions == 600

    def test_compare_modes_structure(self):
        specs = [
            RunSpec("stvp", MachineConfig.stvp, predictor_factory=OraclePredictor),
            RunSpec(
                "mtvp2",
                functools.partial(MachineConfig.mtvp, 2),
                predictor_factory=OraclePredictor,
            ),
        ]
        results = compare_modes(("crafty", "swim"), specs, length=600)
        assert set(results) == {"stvp", "mtvp2"}
        for rows in results.values():
            assert [r.workload for r in rows] == ["crafty", "swim"]
            assert rows[0].suite == "int" and rows[1].suite == "fp"
            for r in rows:
                assert r.base_ipc > 0

    def test_mode_result_speedup(self):
        from repro.core import SimStats

        r = ModeResult("x", "int", "m", ipc=2.0, base_ipc=1.0, stats=SimStats())
        assert r.speedup_percent == pytest.approx(100.0)


class TestExperimentResult:
    def test_format_table_renders_rows_and_summary(self):
        result = ExperimentResult(
            experiment_id="t",
            title="A Title",
            columns=["workload", "x"],
            rows=[{"workload": "mcf", "x": 12.5}, {"workload": "vpr r", "x": -3.25}],
            summary={"geomean": 4.0},
        )
        text = result.format_table()
        assert "A Title" in text
        assert "mcf" in text
        assert "+12.5" in text
        assert "-3.2" in text
        assert "geomean" in text

    def test_format_table_empty_rows(self):
        result = ExperimentResult("t", "Empty", ["a"], [], {})
        assert "Empty" in result.format_table()


class TestExperimentRegistry:
    def test_registry_covers_every_artifact(self):
        from repro.harness import EXPERIMENTS

        assert set(EXPERIMENTS) == {
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "sec4",
            "sec5.1",
            "sec5.3",
            "sec5.4",
            "sec5.6",
            "ablation-latency",
        }

    def test_small_experiment_end_to_end(self, monkeypatch):
        """Run fig5 (the cheapest per-workload experiment) on a tiny trace."""
        import repro.harness.experiments as exp

        monkeypatch.setattr(exp, "ALL", ("crafty", "swim"))
        result = exp.fig5_multivalue_potential(length=800)
        assert len(result.rows) == 2
        for row in result.rows:
            assert 0.0 <= row["fraction"] <= 1.0
