"""Tests for the parallel fan-out and the on-disk result cache."""

import functools

import pytest

from repro.core import MachineConfig, SimStats
from repro.harness import RunSpec, ResultCache, compare_modes, run_simulations, task_key
from repro.harness.cache import describe_factory
from repro.harness.parallel import resolve_cache, resolve_jobs
from repro.vp import OraclePredictor, WangFranklinPredictor

LENGTH = 600


def specs():
    return [
        RunSpec("stvp", MachineConfig.stvp, predictor_factory=OraclePredictor),
        RunSpec(
            "mtvp2",
            functools.partial(MachineConfig.mtvp, 2),
            predictor_factory=WangFranklinPredictor,
        ),
    ]


def tasks():
    return [
        (name, spec, LENGTH, 0)
        for name in ("crafty", "swim")
        for spec in specs()
    ]


class TestTaskKey:
    def test_same_task_same_key(self):
        spec = RunSpec("stvp", MachineConfig.stvp)
        assert task_key("crafty", spec, 600, 0) == task_key("crafty", spec, 600, 0)

    def test_equivalent_specs_share_a_key(self):
        a = RunSpec("a", functools.partial(MachineConfig.mtvp, 2))
        b = RunSpec("b", functools.partial(MachineConfig.mtvp, 2))
        # the key is content-addressed: the spec *name* must not matter
        assert task_key("crafty", a, 600, 0) == task_key("crafty", b, 600, 0)

    def test_key_sensitive_to_every_ingredient(self):
        spec = RunSpec("stvp", MachineConfig.stvp)
        base = task_key("crafty", spec, 600, 0)
        assert task_key("swim", spec, 600, 0) != base
        assert task_key("crafty", spec, 601, 0) != base
        assert task_key("crafty", spec, 600, 1) != base
        other = RunSpec("stvp", MachineConfig.stvp, predictor_factory=WangFranklinPredictor)
        assert task_key("crafty", other, 600, 0) != base

    def test_config_factory_arguments_differentiate(self):
        two = RunSpec("m", functools.partial(MachineConfig.mtvp, 2))
        four = RunSpec("m", functools.partial(MachineConfig.mtvp, 4))
        assert task_key("crafty", two, 600, 0) != task_key("crafty", four, 600, 0)

    def test_lambda_factory_is_uncacheable(self):
        spec = RunSpec(
            "stvp", MachineConfig.stvp, predictor_factory=lambda: OraclePredictor()
        )
        assert describe_factory(spec.predictor_factory) is None
        assert task_key("crafty", spec, 600, 0) is None

    def test_partial_of_class_is_describable(self):
        desc = describe_factory(functools.partial(WangFranklinPredictor, threshold=8))
        assert desc["kwargs"] == {"threshold": 8}


class TestStatsRoundTrip:
    def test_to_dict_from_dict_round_trips(self):
        spec = RunSpec("mtvp2", functools.partial(MachineConfig.mtvp, 2))
        stats = spec.run("crafty", LENGTH, 0)
        clone = SimStats.from_dict(stats.to_dict())
        assert clone == stats

    def test_from_dict_ignores_unknown_fields(self):
        data = SimStats().to_dict()
        data["from_the_future"] = 1
        SimStats.from_dict(data)  # must not raise


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = RunSpec("b", MachineConfig.hpca05_baseline).run("crafty", LENGTH, 0)
        cache.put("k" * 64, stats)
        assert cache.get("k" * 64) == stats
        assert (cache.hits, cache.misses, cache.stores) == (1, 0, 1)

    def test_missing_and_corrupt_entries_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("absent") is None
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.get("bad") is None
        assert cache.misses == 2

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, SimStats())
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestRunSimulations:
    def test_parallel_matches_serial(self):
        serial = run_simulations(tasks(), jobs=1, cache=False)
        fanned = run_simulations(tasks(), jobs=2, cache=False)
        assert [s.to_dict() for s in serial] == [s.to_dict() for s in fanned]

    def test_duplicate_tasks_simulate_once(self, tmp_path, monkeypatch):
        import repro.harness.parallel as par

        calls = []
        real = par._run_task
        monkeypatch.setattr(
            par, "_run_task", lambda *a: calls.append(a) or real(*a)
        )
        batch = tasks()
        results = run_simulations(batch + batch, jobs=1, cache=ResultCache(tmp_path))
        assert len(calls) == len(batch)
        assert [s.to_dict() for s in results[: len(batch)]] == [
            s.to_dict() for s in results[len(batch) :]
        ]

    def test_second_invocation_runs_zero_simulations(self, tmp_path, monkeypatch):
        import repro.harness.parallel as par

        first = run_simulations(tasks(), jobs=1, cache=ResultCache(tmp_path))

        def boom(*a):
            raise AssertionError("cache should have served this task")

        monkeypatch.setattr(par, "_run_task", boom)
        cache = ResultCache(tmp_path)
        second = run_simulations(tasks(), jobs=1, cache=cache)
        assert cache.hits == len(tasks()) and cache.misses == 0
        assert [s.to_dict() for s in first] == [s.to_dict() for s in second]

    def test_cached_parallel_compare_matches_serial(self, tmp_path):
        serial = compare_modes(("crafty", "swim"), specs(), length=LENGTH, cache=False)
        fanned = compare_modes(
            ("crafty", "swim"), specs(), length=LENGTH, jobs=2,
            cache=ResultCache(tmp_path),
        )
        warm = compare_modes(
            ("crafty", "swim"), specs(), length=LENGTH, jobs=2,
            cache=ResultCache(tmp_path),
        )
        for results in (fanned, warm):
            for mode, rows in serial.items():
                got = results[mode]
                assert [r.ipc for r in got] == [r.ipc for r in rows]
                assert [r.stats for r in got] == [r.stats for r in rows]


class TestResolution:
    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(0) >= 1

    def test_resolve_cache(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        opened = resolve_cache(tmp_path)
        assert isinstance(opened, ResultCache)
        assert resolve_cache(opened) is opened
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache(None).directory == tmp_path / "env"
        with pytest.raises(TypeError):
            resolve_cache(42)
