"""Tests for the parallel fan-out and the on-disk result cache."""

import functools
import os

import pytest

from repro.core import MachineConfig, SimStats
from repro.harness import (
    RunSpec,
    ResultCache,
    SimulationError,
    compare_modes,
    run_simulations,
    task_key,
)
from repro.harness.cache import describe_factory
from repro.harness.parallel import resolve_cache, resolve_jobs
from repro.vp import OraclePredictor, WangFranklinPredictor

LENGTH = 600


def specs():
    return [
        RunSpec("stvp", MachineConfig.stvp, predictor_factory=OraclePredictor),
        RunSpec(
            "mtvp2",
            functools.partial(MachineConfig.mtvp, 2),
            predictor_factory=WangFranklinPredictor,
        ),
    ]


def tasks():
    return [
        (name, spec, LENGTH, 0)
        for name in ("crafty", "swim")
        for spec in specs()
    ]


class TestTaskKey:
    def test_same_task_same_key(self):
        spec = RunSpec("stvp", MachineConfig.stvp)
        assert task_key("crafty", spec, 600, 0) == task_key("crafty", spec, 600, 0)

    def test_equivalent_specs_share_a_key(self):
        a = RunSpec("a", functools.partial(MachineConfig.mtvp, 2))
        b = RunSpec("b", functools.partial(MachineConfig.mtvp, 2))
        # the key is content-addressed: the spec *name* must not matter
        assert task_key("crafty", a, 600, 0) == task_key("crafty", b, 600, 0)

    def test_key_sensitive_to_every_ingredient(self):
        spec = RunSpec("stvp", MachineConfig.stvp)
        base = task_key("crafty", spec, 600, 0)
        assert task_key("swim", spec, 600, 0) != base
        assert task_key("crafty", spec, 601, 0) != base
        assert task_key("crafty", spec, 600, 1) != base
        other = RunSpec("stvp", MachineConfig.stvp, predictor_factory=WangFranklinPredictor)
        assert task_key("crafty", other, 600, 0) != base

    def test_config_factory_arguments_differentiate(self):
        two = RunSpec("m", functools.partial(MachineConfig.mtvp, 2))
        four = RunSpec("m", functools.partial(MachineConfig.mtvp, 4))
        assert task_key("crafty", two, 600, 0) != task_key("crafty", four, 600, 0)

    def test_lambda_factory_is_uncacheable(self):
        spec = RunSpec(
            "stvp", MachineConfig.stvp, predictor_factory=lambda: OraclePredictor()
        )
        assert describe_factory(spec.predictor_factory) is None
        assert task_key("crafty", spec, 600, 0) is None

    def test_partial_of_class_is_describable(self):
        desc = describe_factory(functools.partial(WangFranklinPredictor, threshold=8))
        assert desc["kwargs"] == {"threshold": 8}


class TestStatsRoundTrip:
    def test_to_dict_from_dict_round_trips(self):
        spec = RunSpec("mtvp2", functools.partial(MachineConfig.mtvp, 2))
        stats = spec.run("crafty", LENGTH, 0)
        clone = SimStats.from_dict(stats.to_dict())
        assert clone == stats

    def test_from_dict_ignores_unknown_fields(self):
        data = SimStats().to_dict()
        data["from_the_future"] = 1
        SimStats.from_dict(data)  # must not raise


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = RunSpec("b", MachineConfig.hpca05_baseline).run("crafty", LENGTH, 0)
        cache.put("k" * 64, stats)
        assert cache.get("k" * 64) == stats
        assert (cache.hits, cache.misses, cache.stores) == (1, 0, 1)

    def test_missing_and_corrupt_entries_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("absent") is None
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.get("bad") is None
        assert cache.misses == 2

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, SimStats())
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestRunSimulations:
    def test_parallel_matches_serial(self):
        serial = run_simulations(tasks(), jobs=1, cache=False)
        fanned = run_simulations(tasks(), jobs=2, cache=False)
        assert [s.to_dict() for s in serial] == [s.to_dict() for s in fanned]

    def test_duplicate_tasks_simulate_once(self, tmp_path, monkeypatch):
        import repro.harness.parallel as par

        calls = []
        real = par._run_task
        monkeypatch.setattr(
            par, "_run_task", lambda *a: calls.append(a) or real(*a)
        )
        batch = tasks()
        results = run_simulations(batch + batch, jobs=1, cache=ResultCache(tmp_path))
        assert len(calls) == len(batch)
        assert [s.to_dict() for s in results[: len(batch)]] == [
            s.to_dict() for s in results[len(batch) :]
        ]

    def test_second_invocation_runs_zero_simulations(self, tmp_path, monkeypatch):
        import repro.harness.parallel as par

        first = run_simulations(tasks(), jobs=1, cache=ResultCache(tmp_path))

        def boom(*a):
            raise AssertionError("cache should have served this task")

        monkeypatch.setattr(par, "_run_task", boom)
        cache = ResultCache(tmp_path)
        second = run_simulations(tasks(), jobs=1, cache=cache)
        assert cache.hits == len(tasks()) and cache.misses == 0
        assert [s.to_dict() for s in first] == [s.to_dict() for s in second]

    def test_cached_parallel_compare_matches_serial(self, tmp_path):
        serial = compare_modes(("crafty", "swim"), specs(), length=LENGTH, cache=False)
        fanned = compare_modes(
            ("crafty", "swim"), specs(), length=LENGTH, jobs=2,
            cache=ResultCache(tmp_path),
        )
        warm = compare_modes(
            ("crafty", "swim"), specs(), length=LENGTH, jobs=2,
            cache=ResultCache(tmp_path),
        )
        for results in (fanned, warm):
            for mode, rows in serial.items():
                got = results[mode]
                assert [r.ipc for r in got] == [r.ipc for r in rows]
                assert [r.stats for r in got] == [r.stats for r in rows]


def bad_spec():
    """A spec whose config factory raises at construction time."""
    return RunSpec(
        "bad", functools.partial(MachineConfig.mtvp, 2, spawn_latency=-1)
    )


class TestErrorHandling:
    def test_raise_mode_wraps_with_task_identity(self):
        batch = [("crafty", bad_spec(), LENGTH, 7)]
        with pytest.raises(SimulationError) as excinfo:
            run_simulations(batch, jobs=1, cache=False)
        err = excinfo.value
        assert (err.workload, err.spec_name, err.length, err.seed) == (
            "crafty", "bad", LENGTH, 7
        )
        assert "spawn_latency" in str(err)

    def test_collect_mode_keeps_the_batch_alive(self):
        batch = tasks() + [("crafty", bad_spec(), LENGTH, 0)]
        results = run_simulations(batch, jobs=1, cache=False, on_error="collect")
        assert all(isinstance(s, SimStats) for s in results[:-1])
        assert isinstance(results[-1], SimulationError)
        # good results are identical to an all-good batch's
        clean = run_simulations(tasks(), jobs=1, cache=False)
        assert [s.to_dict() for s in results[:-1]] == [s.to_dict() for s in clean]

    def test_collect_mode_in_the_process_pool(self):
        batch = [("crafty", bad_spec(), LENGTH, 0)] + tasks()
        results = run_simulations(batch, jobs=2, cache=False, on_error="collect")
        assert isinstance(results[0], SimulationError)
        assert all(isinstance(s, SimStats) for s in results[1:])

    def test_bad_config_fails_during_key_derivation_too(self, tmp_path):
        # with a cache, the factory already raises while the key is built;
        # that must be a per-task failure as well, not a crash
        batch = [("crafty", bad_spec(), LENGTH, 0)]
        results = run_simulations(
            batch, jobs=1, cache=ResultCache(tmp_path), on_error="collect"
        )
        assert isinstance(results[0], SimulationError)

    def test_errors_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        batch = [("crafty", bad_spec(), LENGTH, 0)]
        run_simulations(batch, jobs=1, cache=cache, on_error="collect")
        assert len(cache) == 0

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_simulations([], on_error="ignore")


class TestCachePrune:
    def fill(self, tmp_path, ages_days):
        """One entry per age (in days before 'now'); returns (cache, now)."""
        cache = ResultCache(tmp_path)
        now = 1_700_000_000.0
        for i, age in enumerate(ages_days):
            key = f"{i:064d}"
            cache.put(key, SimStats())
            mtime = now - age * 86400
            os.utime(cache._path(key), (mtime, mtime))
        return cache, now

    def test_prune_by_age(self, tmp_path):
        cache, now = self.fill(tmp_path, [0, 5, 40, 90])
        assert cache.prune(max_age_days=30, now=now) == 2
        assert len(cache) == 2

    def test_prune_by_bytes_evicts_lru(self, tmp_path):
        cache, now = self.fill(tmp_path, [0, 1, 2, 3])
        entry = cache._path(f"{0:064d}").stat().st_size
        assert cache.prune(max_bytes=2 * entry, now=now) == 2
        # the two *newest* entries survive
        assert cache.get(f"{0:064d}") is not None
        assert cache.get(f"{1:064d}") is not None
        assert cache.get(f"{2:064d}") is None

    def test_prune_without_limits_is_a_noop(self, tmp_path):
        cache, _ = self.fill(tmp_path, [0, 100])
        assert cache.prune() == 0
        assert len(cache) == 2

    def test_prune_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        cache, now = self.fill(tmp_path, [0, 90])
        # ages are relative to real now in the CLI; backdate far enough
        assert main(["cache", "prune", "--max-age-days", "365000",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "pruned 0 entries" in capsys.readouterr().out
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 1


class TestLazyEnvResolution:
    def test_default_length_reads_env_at_call_time(self, monkeypatch):
        from repro.harness import runner
        from repro.harness.runner import default_length

        monkeypatch.delenv("REPRO_TRACE_LEN", raising=False)
        assert default_length() == 16000
        monkeypatch.setenv("REPRO_TRACE_LEN", "1234")
        assert default_length() == 1234
        # the historical module constant follows the environment too
        assert runner.DEFAULT_LENGTH == 1234

    def test_default_length_rejects_garbage_clearly(self, monkeypatch):
        from repro.harness.runner import default_length

        monkeypatch.setenv("REPRO_TRACE_LEN", "lots")
        with pytest.raises(ValueError, match="REPRO_TRACE_LEN.*'lots'"):
            default_length()

    def test_session_honours_late_env(self, monkeypatch):
        from repro.harness import Session

        monkeypatch.setenv("REPRO_TRACE_LEN", "2345")
        assert Session().length == 2345

    def test_resolve_jobs_rejects_garbage_clearly(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS.*'many'"):
            resolve_jobs(None)


class TestResolution:
    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(0) >= 1

    def test_resolve_cache(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        opened = resolve_cache(tmp_path)
        assert isinstance(opened, ResultCache)
        assert resolve_cache(opened) is opened
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache(None).directory == tmp_path / "env"
        with pytest.raises(TypeError):
            resolve_cache(42)
