"""Tests for the observability layer (repro.obs).

Four contracts from DESIGN.md §5d:

* the ring buffer is bounded — it evicts oldest-first and counts drops;
* exported Chrome traces are structurally valid trace-event JSON, with
  each spawned context on its own thread lane;
* cycle-weighted histograms charge elapsed cycles to the *previous*
  value and ignore out-of-order timestamps;
* instrumentation is read-only — a traced run's SimStats is bit-identical
  to its untraced twin (the golden-identity test).
"""

from __future__ import annotations

import json

import pytest

from repro.core import MachineConfig
from repro.core.engine import Engine
from repro.harness.bench import stats_digest
from repro.obs import (
    EVENT_NAMES,
    NULL_PROBE,
    CycleWeightedHistogram,
    EventKind,
    MetricsRegistry,
    Probe,
    Tracer,
    format_metrics,
)
from repro.workloads import get_workload


def _mtvp_engine(tracer=None, metrics=None, length=4000):
    trace = get_workload("mcf").trace(length=length, seed=0)
    from repro.select import AlwaysSelector
    from repro.vp import WangFranklinPredictor

    return Engine(
        trace,
        MachineConfig.mtvp(8),
        predictor=WangFranklinPredictor(),
        selector=AlwaysSelector(),
        tracer=tracer,
        metrics=metrics,
    )


class TestRingBuffer:
    def test_bounded_eviction_oldest_first(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.emit(i, int(EventKind.KILL), 0, {"wasted": i})
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        # the surviving window is the newest 4 events, oldest first
        assert [e[0] for e in tracer.events] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_no_eviction_below_capacity(self):
        tracer = Tracer(capacity=16)
        for i in range(5):
            tracer.emit(i, int(EventKind.SPAWN), 1)
        assert tracer.dropped == 0
        assert len(tracer) == 5

    def test_register_thread_first_wins(self):
        tracer = Tracer()
        tracer.register_thread(3, "ctx3", parent=0, cycle=10)
        tracer.register_thread(3, "other", parent=1, cycle=99)
        assert tracer.threads[3] == ("ctx3", 0, 10)

    def test_summary_counts_by_kind(self):
        tracer = Tracer()
        tracer.register_thread(0, "ctx0")
        tracer.emit(0, int(EventKind.SPAWN), 0)
        tracer.emit(1, int(EventKind.SPAWN), 0)
        tracer.emit(2, int(EventKind.KILL), 0)
        summary = tracer.summary()
        assert summary["emitted"] == summary["retained"] == 3
        assert summary["threads"] == 1
        assert summary["by_kind"] == {"spawn": 2, "kill": 1}


class TestChromeExport:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        tracer = Tracer()
        stats = _mtvp_engine(tracer=tracer).run()
        path = tmp_path_factory.mktemp("trace") / "trace.json"
        tracer.export_chrome(path)
        return tracer, stats, json.loads(path.read_text())

    def test_valid_trace_event_json(self, traced):
        _tracer, _stats, payload = traced
        events = payload["traceEvents"]
        assert events, "empty trace"
        for ev in events:
            assert ev["ph"] in ("M", "X", "i")
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], int)
            if ev["ph"] == "X":
                assert ev["dur"] >= 1

    def test_spawned_context_gets_own_lane(self, traced):
        tracer, _stats, payload = traced
        # at least one context beyond ctx0 was spawned and registered
        spawned = {
            tid for tid, (_n, parent, _c) in tracer.threads.items()
            if parent is not None
        }
        assert spawned, "MTVP run spawned no contexts"
        lanes = {
            ev["tid"] for ev in payload["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert spawned <= lanes
        # spawned lanes carry events of their own
        event_tids = {
            ev["tid"] for ev in payload["traceEvents"] if ev["ph"] != "M"
        }
        assert spawned & event_tids

    def test_spawn_join_kill_events_present(self, traced):
        _tracer, stats, payload = traced
        names = {ev["name"] for ev in payload["traceEvents"] if ev["ph"] == "i"}
        assert "spawn" in names
        assert stats.confirms == 0 or "join" in names
        assert stats.kills == 0 or "kill" in names
        # the fixture run is known to exercise both outcomes
        assert stats.confirms > 0 and stats.kills > 0

    def test_jsonl_export_self_describing(self, traced, tmp_path):
        tracer, _stats, _payload = traced
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        threads = [rec for rec in lines if rec["event"] == "thread"]
        assert len(threads) == len(tracer.threads)
        body = [rec for rec in lines if rec["event"] != "thread"]
        assert len(body) == len(tracer)
        assert all(rec["event"] in EVENT_NAMES for rec in body)


class TestCycleWeightedHistogram:
    def test_weights_charge_previous_value(self):
        h = CycleWeightedHistogram()
        h.observe(0, 1)     # value 1 holds from cycle 0
        h.observe(10, 4)    # ... for 10 cycles; value 4 holds from 10
        h.close(30)         # ... for 20 cycles
        assert h.total_weight == 30
        assert h.weighted_mean == pytest.approx((1 * 10 + 4 * 20) / 30)
        assert h.min_value == 1 and h.max_value == 4
        assert h.buckets == {1: 10, 4: 20}

    def test_out_of_order_observation_contributes_zero(self):
        h = CycleWeightedHistogram()
        h.observe(100, 2)
        h.observe(50, 9)    # skewed context clock: no negative weight
        h.close(110)
        assert h.total_weight == 10
        assert h.min_value == h.max_value  # only one value got weight

    def test_add_and_nonpositive_weight(self):
        h = CycleWeightedHistogram()
        h.add(5, weight=3)
        h.add(5, weight=0)
        h.add(5, weight=-2)
        assert h.total_weight == 3
        assert h.buckets == {8: 3}  # power-of-two bucket: 5 -> 8

    def test_close_idempotent(self):
        h = CycleWeightedHistogram()
        h.observe(0, 7)
        h.close(10)
        h.close(10)
        assert h.total_weight == 10

    def test_to_dict_stable_keys(self):
        h = CycleWeightedHistogram()
        h.add(0, 2)
        h.add(100, 1)
        d = h.to_dict()
        assert d["min"] == 0 and d["max"] == 100
        assert list(d["buckets"]) == sorted(d["buckets"], key=int)


class TestMetricsRegistry:
    def test_create_on_touch(self):
        reg = MetricsRegistry()
        reg.count("kills_observed")
        reg.count("kills_observed", 2)
        assert reg.counters == {"kills_observed": 3}
        assert reg.histogram("rob") is reg.histogram("rob")
        assert "rob" in reg.histograms

    def test_format_metrics_roundtrip(self):
        reg = MetricsRegistry()
        reg.count("predict_mtvp", 4)
        reg.histogram("rob_occupancy").observe(0, 10)
        reg.histogram("rob_occupancy").close(100)
        text = format_metrics({"schema": 1, "metrics": reg.to_dict()})
        assert "rob_occupancy" in text
        assert "predict_mtvp" in text

    def test_format_metrics_empty(self):
        assert "no extended metrics" in format_metrics({})


class TestNullProbe:
    def test_disabled_and_noop(self):
        assert NULL_PROBE.enabled is False
        # every public hook resolves to a no-op accepting anything
        assert NULL_PROBE.step(0, 0, "load", 0, 0, 0, 0, 0, 0) is None
        assert NULL_PROBE.anything_at_all(1, 2, 3, key="value") is None
        with pytest.raises(AttributeError):
            NULL_PROBE._private

    def test_enabled_probe_requires_a_sink(self):
        with pytest.raises(ValueError):
            Probe()


class TestGoldenIdentity:
    """Instrumentation is read-only: traced stats == untraced stats."""

    def test_traced_run_bit_identical(self):
        plain = _mtvp_engine().run()
        observed = _mtvp_engine(tracer=Tracer(), metrics=MetricsRegistry()).run()
        # dataclass equality excludes wall_seconds/extended by design
        assert observed == plain
        assert stats_digest(observed) == stats_digest(plain)
        # and the observed run actually recorded something
        assert observed.extended["metrics"]["histograms"]
        assert observed.extended["trace"]["retained"] > 0
        assert not plain.extended

    def test_extended_serialization_gated_on_content(self):
        plain = _mtvp_engine(length=1500).run()
        d = plain.to_dict()
        assert "extended" not in d and "schema_version" not in d
        observed = _mtvp_engine(metrics=MetricsRegistry(), length=1500).run()
        d = observed.to_dict()
        assert d["schema_version"] == 2
        assert d["extended"]["metrics"]["histograms"]
