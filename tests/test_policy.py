"""The ExecutionPolicy surface: resolvers, merging, deprecation shims.

The API-redesign contract (DESIGN.md §5i): every entry point —
:class:`~repro.harness.Session`, :func:`~repro.harness.run_simulations`,
:func:`~repro.sweep.run_sweep`, :class:`~repro.serve.api.CampaignRunner`
— accepts ``policy=ExecutionPolicy(...)`` as the preferred spelling of
its execution settings, the old per-keyword spellings keep working
behind a :class:`DeprecationWarning`, and **old and new spellings are
observationally identical**: same task keys (so caches warmed under one
spelling serve the other) and same results.
"""

from __future__ import annotations

import warnings

import pytest

from repro.harness.cache import task_key
from repro.harness.policy import (
    DISPATCH_MODES,
    UNSET,
    ExecutionPolicy,
    resolve_dispatch,
    resolve_jobs,
    resolve_lanes,
    resolve_workers,
)


class TestResolveJobs:
    def test_unset_without_env_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_supplies_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(None) == 4

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(3) == 3

    def test_zero_means_all_cores(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_env_garbage_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match=r"REPRO_JOBS.*'many'"):
            resolve_jobs(None)

    def test_bool_is_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(True)


class TestResolveLanes:
    def test_unset_without_env_is_scalar(self, monkeypatch):
        monkeypatch.delenv("REPRO_LANES", raising=False)
        assert resolve_lanes(None) == 1

    def test_auto_means_whole_group(self):
        assert resolve_lanes("auto", group_size=5) == 5
        assert resolve_lanes("auto") == 0  # unbounded without a group

    def test_env_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_LANES", "auto")
        assert resolve_lanes(None, group_size=3) == 3

    def test_garbage_names_the_setting(self, monkeypatch):
        monkeypatch.setenv("REPRO_LANES", "wide")
        with pytest.raises(ValueError, match=r"REPRO_LANES.*'wide'"):
            resolve_lanes(None)


class TestResolveWorkers:
    def test_unset_without_env_defaults_to_two(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 2

    def test_env_and_all_cores(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(0) == (os.cpu_count() or 1)


class TestResolveDispatch:
    def test_unset_without_env_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISPATCH", raising=False)
        assert resolve_dispatch(None) == "auto"

    def test_env_supplies_the_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH", "workers")
        assert resolve_dispatch(None) == "workers"

    def test_names_are_normalized(self):
        assert resolve_dispatch(" POOL ") == "pool"
        for mode in DISPATCH_MODES:
            assert resolve_dispatch(mode) == mode

    def test_dispatcher_instances_pass_through(self):
        class Fake:
            def run(self, *a, **k):
                return {}

        fake = Fake()
        assert resolve_dispatch(fake) is fake

    def test_garbage_lists_the_modes(self):
        with pytest.raises(ValueError, match="local.*pool.*workers"):
            resolve_dispatch("cloud")


class TestExecutionPolicy:
    def test_blank_policy_reproduces_historical_defaults(self, monkeypatch):
        for var in ("REPRO_JOBS", "REPRO_LANES", "REPRO_DISPATCH",
                    "REPRO_WORKERS", "REPRO_CACHE_DIR"):
            monkeypatch.delenv(var, raising=False)
        policy = ExecutionPolicy()
        assert policy.resolved_jobs() == 1
        assert policy.resolved_lanes() == 1
        assert policy.resolved_workers() == 2
        assert policy.resolved_dispatch() == "local"
        assert policy.resolved_cache() is None

    def test_auto_dispatch_follows_job_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISPATCH", raising=False)
        assert ExecutionPolicy(jobs=1).resolved_dispatch() == "local"
        assert ExecutionPolicy(jobs=4).resolved_dispatch() == "pool"

    def test_merged_ignores_none_and_overrides_rest(self):
        base = ExecutionPolicy(jobs=2, retries=1)
        merged = base.merged(jobs=None, retries=3, workers=5)
        assert merged.jobs == 2
        assert merged.retries == 3
        assert merged.workers == 5
        assert base.merged() is base  # no-op merge allocates nothing

    def test_policy_is_immutable(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionPolicy().jobs = 9  # type: ignore[misc]

    def test_coalesce_without_legacy_kwargs_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            policy = ExecutionPolicy.coalesce(
                ExecutionPolicy(jobs=2), "api", jobs=UNSET, cache=UNSET
            )
        assert policy.jobs == 2

    def test_coalesce_warns_naming_api_and_keywords(self):
        with pytest.warns(DeprecationWarning, match=r"api:.*'cache'.*'jobs'"):
            policy = ExecutionPolicy.coalesce(
                None, "api", jobs=3, cache=False, lanes=UNSET
            )
        assert policy.jobs == 3
        assert policy.cache is False
        assert policy.lanes is None

    def test_coalesce_explicit_keyword_beats_policy_field(self):
        with pytest.warns(DeprecationWarning):
            policy = ExecutionPolicy.coalesce(
                ExecutionPolicy(jobs=8), "api", jobs=1
            )
        assert policy.jobs == 1

    def test_coalesce_rejects_non_policy(self):
        with pytest.raises(TypeError, match="ExecutionPolicy"):
            ExecutionPolicy.coalesce({"jobs": 2}, "api")


class TestDeprecationShims:
    """Every entry point: legacy keywords warn, policy= does not."""

    def test_session_legacy_keywords_warn(self):
        from repro.harness import Session

        with pytest.warns(DeprecationWarning, match=r"Session:.*'jobs'"):
            session = Session(jobs=2, cache=False)
        assert session.policy.jobs == 2
        assert session.policy.cache is False

    def test_session_policy_spelling_is_silent(self):
        from repro.harness import Session

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = Session(policy=ExecutionPolicy(jobs=2, cache=False))
        assert session.policy.jobs == 2

    def test_run_simulations_legacy_keywords_warn(self):
        from repro.harness import run_simulations

        with pytest.warns(DeprecationWarning, match=r"run_simulations:"):
            run_simulations([], jobs=1)

    def test_run_sweep_legacy_keywords_warn(self, tmp_path):
        from repro.sweep import ResultStore, run_sweep
        from repro.sweep.spec import SweepSpec

        spec = _tiny_spec("shim")
        with ResultStore(tmp_path / "s.db") as store:
            with pytest.warns(DeprecationWarning, match=r"run_sweep:.*'jobs'"):
                summary = run_sweep(spec, store, jobs=1, cache=False)
        assert summary.complete

    def test_campaign_runner_legacy_keywords_warn(self, tmp_path):
        from repro.serve.api import CampaignRunner

        with pytest.warns(DeprecationWarning, match=r"CampaignRunner:"):
            runner = CampaignRunner(state_dir=tmp_path, jobs=2)
        assert runner.policy.jobs == 2
        # the lease-liveness defaults survive the policy rewrite
        assert runner.stale_after == 300.0
        assert runner.heartbeat == 10.0


def _tiny_spec(name: str):
    from repro.sweep.spec import SweepSpec

    return SweepSpec.from_dict({
        "name": name,
        "axes": {"spawn_latency": [1]},
        "base": {"machine": "mtvp", "threads": 2,
                 "predictor": "wang-franklin"},
        "workloads": ["mcf"],
        "seeds": [0],
        "lengths": [300],
    })


class TestOldNewEquivalence:
    """Old and new spellings: identical task keys, identical results."""

    def test_task_keys_are_identical_across_spellings(self):
        from repro.harness import Session

        with pytest.warns(DeprecationWarning):
            legacy = Session(
                predictor="wang-franklin", length=400,
                jobs=2, cache=False, warmup=100, sample=200,
            )
        modern = Session(
            predictor="wang-franklin", length=400,
            policy=ExecutionPolicy(jobs=2, cache=False,
                                   warmup=100, sample=200),
        )
        key_legacy = task_key("mcf", legacy.spec(), legacy.length, 0)
        key_modern = task_key("mcf", modern.spec(), modern.length, 0)
        assert key_legacy == key_modern

    def test_results_and_cache_are_shared_across_spellings(self, tmp_path):
        """A cache warmed by the legacy spelling serves the policy
        spelling without a single new simulation — the strongest form of
        'same task keys'."""
        from repro.harness import ResultCache, Session

        cache = ResultCache(tmp_path / "cache")
        with pytest.warns(DeprecationWarning):
            legacy = Session(predictor="wang-franklin", length=400,
                             cache=cache, jobs=1)
        stats_legacy = legacy.run_many(["mcf", "crafty"])
        misses_after_fill = cache.misses

        modern = Session(predictor="wang-franklin", length=400,
                         policy=ExecutionPolicy(cache=cache, jobs=1))
        stats_modern = modern.run_many(["mcf", "crafty"])
        assert cache.misses == misses_after_fill, (
            "the policy spelling missed a cache entry the legacy "
            "spelling wrote — task keys diverged")
        for a, b in zip(stats_legacy, stats_modern):
            assert a.cycles == b.cycles
            assert a.useful_ipc == b.useful_ipc

    def test_run_sweep_spellings_agree(self, tmp_path):
        """One campaign per spelling, separate stores: byte-identical
        reports."""
        from repro.sweep import ResultStore, aggregate, full_report, run_sweep

        spec = _tiny_spec("equiv")
        with ResultStore(tmp_path / "old.db") as store:
            with pytest.warns(DeprecationWarning):
                run_sweep(spec, store, jobs=1, cache=False, retries=0)
            rows_old = store.rows("equiv")
        with ResultStore(tmp_path / "new.db") as store:
            run_sweep(spec, store,
                      policy=ExecutionPolicy(jobs=1, cache=False, retries=0))
            rows_new = store.rows("equiv")
        assert full_report("equiv", aggregate(rows_old)) == \
            full_report("equiv", aggregate(rows_new))
