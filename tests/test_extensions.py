"""Tests for extensions beyond the paper's default configuration:
the CMP substrate (Section 3.2) and the commit-based ILP selector
(Section 5.1's third predictor)."""

from repro import IlpCommitSelector, IlpPredSelector, MachineConfig, OraclePredictor
from repro.core import SimMode
from repro.select import AlwaysSelector, PredictionKind

from tests.conftest import alu_block, run_engine


class TestCmpConfig:
    def test_preset(self):
        cfg = MachineConfig.cmp(4)
        assert cfg.mode is SimMode.MTVP
        assert cfg.num_contexts == 4
        assert not cfg.smt_shared
        assert cfg.spawn_latency > MachineConfig.mtvp(4).spawn_latency

    def test_overrides(self):
        cfg = MachineConfig.cmp(4, spawn_latency=10)
        assert cfg.spawn_latency == 10


class TestCmpExecution:
    def _trace(self, builder):
        trace = []
        for i in range(5):
            trace.append(
                builder.load(dst=1, addr=(1 << 33) + i * (1 << 22), value=5)
            )
            trace += alu_block(builder, 40, dst_base=2)
        return trace

    def test_cmp_accounts_exactly(self, builder):
        trace = self._trace(builder)
        cfg = MachineConfig.cmp(4, warm_caches=False)
        _, stats = run_engine(
            trace, cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert stats.useful_instructions == len(trace)
        assert stats.spawns > 0

    def test_private_resources_remove_contention(self, builder):
        """Single-thread code on CMP matches SMT exactly (one group used)."""
        trace = alu_block(builder, 200)
        _, smt = run_engine(
            trace, MachineConfig.hpca05_baseline(warm_caches=False)
        )
        _, cmp_ = run_engine(
            list(trace),
            MachineConfig.cmp(4, warm_caches=False, mode=SimMode.BASELINE),
        )
        assert cmp_.useful_instructions == smt.useful_instructions

    def test_cmp_spawn_cost_visible(self, builder):
        """Same machine, same spawns: the bigger copy latency costs time."""
        trace = self._trace(builder)
        cheap = MachineConfig.cmp(8, warm_caches=False, spawn_latency=1)
        pricey = MachineConfig.cmp(8, warm_caches=False, spawn_latency=200)
        _, s_cheap = run_engine(
            list(trace), cheap, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        _, s_pricey = run_engine(
            list(trace), pricey, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert s_pricey.cycles >= s_cheap.cycles


class TestCommitSelector:
    def test_uses_committed_metric_when_present(self):
        strict = IlpCommitSelector()
        assert strict._progress(100, committed=40) == 40
        assert strict._progress(100, committed=None) == 100
        plain = IlpPredSelector()
        assert plain._progress(100, committed=40) == 100

    def test_end_to_end_comparable_to_ilp_pred(self, builder):
        """Section 5.1: 'generally comparable to ILP-pred'."""
        trace = []
        for i in range(8):
            trace.append(
                builder.load(dst=1, addr=(1 << 33) + i * (1 << 22), value=5)
            )
            trace += alu_block(builder, 60, dst_base=2)
        results = {}
        for name, selector in (
            ("fetch", IlpPredSelector()),
            ("commit", IlpCommitSelector()),
        ):
            cfg = MachineConfig.mtvp(8, warm_caches=False)
            _, stats = run_engine(
                list(trace), cfg, predictor=OraclePredictor(), selector=selector
            )
            results[name] = stats
        a, b = results["fetch"].useful_ipc, results["commit"].useful_ipc
        assert abs(a - b) / max(a, b) < 0.5

    def test_record_accepts_committed_kwarg(self):
        s = IlpCommitSelector()
        s.record(0x100, PredictionKind.MTVP, 100, 1000, committed=30)
        entry = s._entry(0x100)
        assert entry.instructions[PredictionKind.MTVP] == 30
