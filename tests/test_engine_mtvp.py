"""Engine tests: multithreaded value prediction (the core contribution)."""

from repro.core import MachineConfig
from repro.select import AlwaysSelector
from repro.vp import OraclePredictor

from tests.conftest import FixedPredictor, alu_block, run_engine


def miss_then_work(ib, work=60, addr=1 << 33):
    """A memory miss followed by lots of independent work, ending with a
    store so speculative commit paths are exercised."""
    trace = [ib.load(dst=1, addr=addr, value=5)]
    trace += alu_block(ib, work, dst_base=2)
    trace += [ib.store(addr=0x9000, srcs=(2,), value=1)]
    return trace


class TestSpawnAndConfirm:
    def test_correct_prediction_spawns_and_confirms(self, builder, mtvp_config):
        trace = miss_then_work(builder)
        _, stats = run_engine(
            trace, mtvp_config, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert stats.spawns == 1
        assert stats.confirms == 1
        assert stats.kills == 0
        assert stats.mtvp_correct == 1
        assert stats.useful_instructions == len(trace)

    def test_speculative_work_confirmed_counts_useful(self, builder, mtvp_config):
        trace = miss_then_work(builder, work=100)
        _, stats = run_engine(
            trace, mtvp_config, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert stats.useful_instructions == len(trace)
        assert stats.wasted_instructions == 0

    def test_speculative_stores_buffered_then_released(self, builder, mtvp_config):
        ib = builder
        trace = [ib.load(dst=1, addr=1 << 33, value=5)]
        trace += [ib.store(addr=0xA000 + 8 * i, srcs=(), value=i) for i in range(5)]
        trace += alu_block(ib, 10, dst_base=3)
        engine, stats = run_engine(
            trace, mtvp_config, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert stats.confirms == 1
        # after confirmation the buffer must be drained to the hierarchy
        assert len(engine.store_buffer) == 0
        assert engine.store_buffer.allocations == 5


class TestMisprediction:
    def test_wrong_value_kills_child(self, builder, mtvp_config):
        trace = miss_then_work(builder, work=40)
        _, stats = run_engine(
            trace,
            mtvp_config,
            predictor=FixedPredictor(offset=3),
            selector=AlwaysSelector(),
        )
        assert stats.kills >= 1
        assert stats.mtvp_incorrect >= 1
        # the parent re-executes: results still complete and correct
        assert stats.useful_instructions == len(trace)
        assert stats.wasted_instructions > 0

    def test_squashed_stores_disappear(self, builder, mtvp_config):
        ib = builder
        trace = [ib.load(dst=1, addr=1 << 33, value=5)]
        trace += [ib.store(addr=0xA000, srcs=(), value=7)]
        trace += alu_block(ib, 10, dst_base=3)
        engine, stats = run_engine(
            trace,
            mtvp_config,
            predictor=FixedPredictor(offset=3),
            selector=AlwaysSelector(),
        )
        assert stats.kills >= 1
        assert len(engine.store_buffer) == 0

    def test_misprediction_costs_time(self, builder, mtvp_config):
        trace = miss_then_work(builder, work=40)
        _, right = run_engine(
            trace, mtvp_config, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        _, wrong = run_engine(
            trace,
            MachineConfig.mtvp(8, warm_caches=False),
            predictor=FixedPredictor(offset=3),
            selector=AlwaysSelector(),
        )
        assert wrong.cycles >= right.cycles


class TestDecoupledWindows:
    def test_mtvp_beats_baseline_on_spaced_misses(self, builder):
        """The headline effect: speculative commit extends past each miss."""
        ib = builder
        trace = []
        for i in range(6):
            trace += miss_then_work(ib, work=120, addr=(1 << 33) + i * (1 << 22))
        base_cfg = MachineConfig.hpca05_baseline(
            warm_caches=False, rob_size=64, rename_regs=64
        )
        mtvp_cfg = MachineConfig.mtvp(
            8, warm_caches=False, rob_size=64, rename_regs=64
        )
        _, base = run_engine(trace, base_cfg)
        _, mtvp = run_engine(
            trace, mtvp_cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert mtvp.useful_ipc > base.useful_ipc * 1.3

    def test_more_contexts_allow_deeper_chains(self, builder):
        ib = builder
        trace = []
        for i in range(8):
            trace += miss_then_work(ib, work=40, addr=(1 << 33) + i * (1 << 22))
        results = {}
        for threads in (2, 8):
            cfg = MachineConfig.mtvp(
                threads, warm_caches=False, rob_size=64, rename_regs=64
            )
            _, stats = run_engine(
                trace, cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
            )
            results[threads] = stats
        assert results[8].spawns >= results[2].spawns
        assert results[8].useful_ipc >= results[2].useful_ipc

    def test_spawn_denied_when_contexts_exhausted(self, builder):
        ib = builder
        trace = []
        for i in range(8):
            trace += [ib.load(dst=1, addr=(1 << 33) + i * (1 << 22), value=5)]
            trace += alu_block(ib, 4, dst_base=2)
        cfg = MachineConfig.mtvp(2, warm_caches=False)
        _, stats = run_engine(
            trace, cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert stats.spawn_denied_no_context > 0
        # denied spawns fall back to single-threaded prediction
        assert stats.stvp_predictions > 0


class TestStoreBufferLimit:
    def test_full_store_buffer_stalls_speculation(self, builder):
        ib = builder
        trace = [ib.load(dst=1, addr=1 << 33, value=5)]
        trace += [ib.store(addr=0xA000 + 8 * i, srcs=(), value=i) for i in range(30)]
        trace += alu_block(ib, 10, dst_base=3)
        cfg = MachineConfig.mtvp(8, warm_caches=False, store_buffer_entries=4)
        _, stats = run_engine(
            trace, cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert stats.store_buffer_stalls > 0
        assert stats.useful_instructions == len(trace)

    def test_larger_buffer_removes_stalls(self, builder):
        ib = builder
        trace = [ib.load(dst=1, addr=1 << 33, value=5)]
        trace += [ib.store(addr=0xA000 + 8 * i, srcs=(), value=i) for i in range(30)]
        trace += alu_block(ib, 10, dst_base=3)
        cfg = MachineConfig.mtvp(8, warm_caches=False, store_buffer_entries=None)
        _, stats = run_engine(
            trace, cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert stats.store_buffer_stalls == 0


class TestStoreForwarding:
    def test_speculative_load_sees_ancestor_store(self, builder):
        ib = builder
        addr = 0xB000
        trace = [ib.load(dst=1, addr=1 << 33, value=5)]  # spawns here
        trace += [ib.store(addr=addr, srcs=(), value=9)]
        trace += [ib.load(dst=2, addr=addr, value=9)]
        trace += alu_block(ib, 10, dst_base=3)
        engine, stats = run_engine(
            trace,
            MachineConfig.mtvp(8, warm_caches=False),
            predictor=OraclePredictor(),
            selector=AlwaysSelector(),
        )
        assert engine.store_buffer.forward_hits >= 1


class TestNestedSpawns:
    def test_chained_speculation(self, builder):
        """A speculative thread spawns again at its own missing load."""
        ib = builder
        trace = []
        for i in range(3):
            trace += [ib.load(dst=1, addr=(1 << 33) + i * (1 << 22), value=5 + i)]
            trace += alu_block(ib, 30, dst_base=2)
        cfg = MachineConfig.mtvp(8, warm_caches=False)
        _, stats = run_engine(
            trace, cfg, predictor=OraclePredictor(), selector=AlwaysSelector()
        )
        assert stats.spawns == 3
        assert stats.confirms == 3
        assert stats.useful_instructions == len(trace)

    def test_mispredict_kills_whole_subtree(self, builder):
        ib = builder
        trace = []
        for i in range(3):
            trace += [ib.load(dst=1, addr=(1 << 33) + i * (1 << 22), value=5 + i)]
            trace += alu_block(ib, 30, dst_base=2)
        cfg = MachineConfig.mtvp(8, warm_caches=False)
        # first prediction wrong, deeper ones wrong too: everything rewinds
        _, stats = run_engine(
            trace, cfg, predictor=FixedPredictor(offset=1), selector=AlwaysSelector()
        )
        assert stats.kills >= 1
        assert stats.useful_instructions == len(trace)


class TestMultiValue:
    def test_correct_alternative_survives(self, builder):
        ib = builder
        trace = [ib.load(dst=1, addr=1 << 33, value=5)]
        trace += alu_block(ib, 30, dst_base=2)
        cfg = MachineConfig.mtvp(8, warm_caches=False, multi_value=3)
        # primary wrong (+1), but one alternative (+0 offset) is right
        predictor = FixedPredictor(offset=1, multi=(0, 2))
        _, stats = run_engine(trace, cfg, predictor=predictor, selector=AlwaysSelector())
        assert stats.spawns == 3
        assert stats.confirms == 1
        assert stats.kills == 2
        assert stats.useful_instructions == len(trace)

    def test_all_wrong_alternatives_all_die(self, builder):
        ib = builder
        trace = [ib.load(dst=1, addr=1 << 33, value=5)]
        trace += alu_block(ib, 30, dst_base=2)
        cfg = MachineConfig.mtvp(8, warm_caches=False, multi_value=3)
        predictor = FixedPredictor(offset=1, multi=(2, 3))
        _, stats = run_engine(trace, cfg, predictor=predictor, selector=AlwaysSelector())
        assert stats.kills == 3
        assert stats.confirms == 0
        assert stats.useful_instructions == len(trace)
