"""Unit tests for the address/value/branch stream walkers."""

import random

from repro.workloads.spec import (
    AddressPattern,
    BranchModel,
    BranchSpec,
    StreamSpec,
    ValueClass,
    ValueMix,
)
from repro.workloads.streams import AddressStream, BranchOutcomes, ValueStream


def make_rng():
    return random.Random(17)


class TestAddressStream:
    def test_sequential_advances_by_stride(self):
        s = AddressStream(
            StreamSpec(AddressPattern.SEQUENTIAL, 1 << 20, stride=256),
            base=1 << 32,
            rng=make_rng(),
        )
        first = s.addr(0)
        s.advance()
        assert s.addr(0) == first + 256

    def test_offsets_are_relative_to_cursor(self):
        s = AddressStream(
            StreamSpec(AddressPattern.SEQUENTIAL, 1 << 20, stride=256),
            base=1 << 32,
            rng=make_rng(),
        )
        assert s.addr(64) == s.addr(0) + 64

    def test_region_wraparound(self):
        s = AddressStream(
            StreamSpec(AddressPattern.SEQUENTIAL, 1024, stride=256),
            base=1 << 32,
            rng=make_rng(),
        )
        for _ in range(10):
            s.advance()
            addr = s.addr(0)
            assert (1 << 32) <= addr < (1 << 32) + 1024 + 64

    def test_random_pattern_gives_fresh_lines(self):
        s = AddressStream(
            StreamSpec(AddressPattern.RANDOM, 1 << 24),
            base=1 << 32,
            rng=make_rng(),
        )
        addrs = {s.addr(0) >> 6 for _ in range(50)}
        assert len(addrs) > 40  # overwhelmingly distinct lines

    def test_chase_jumps_move_the_cursor(self):
        spec = StreamSpec(AddressPattern.CHASE, 1 << 24, stride=512, jump_prob=1.0)
        s = AddressStream(spec, base=1 << 32, rng=make_rng())
        a = s.addr(0)
        s.advance()  # guaranteed jump
        b = s.addr(0)
        assert abs(b - a) != 512

    def test_chase_without_jump_is_strided(self):
        spec = StreamSpec(AddressPattern.CHASE, 1 << 24, stride=512, jump_prob=0.0)
        s = AddressStream(spec, base=1 << 32, rng=make_rng())
        a = s.addr(0)
        s.advance()
        assert s.addr(0) == a + 512

    def test_slot_offsets_fit_the_span(self):
        spec = StreamSpec(AddressPattern.CHASE, 1 << 24, stride=1088)
        s = AddressStream(spec, base=1 << 32, rng=make_rng())
        rng = make_rng()
        for _ in range(50):
            off = s.slot_offset(rng)
            assert 0 <= off < 1088
            assert off % 8 == 0


class TestValueStream:
    def test_constant(self):
        v = ValueStream(ValueMix(ValueClass.CONSTANT), make_rng())
        values = {v.next_value() for _ in range(20)}
        assert len(values) == 1

    def test_strided(self):
        v = ValueStream(ValueMix(ValueClass.STRIDED, stride=5), make_rng())
        seq = [v.next_value() for _ in range(5)]
        assert all(b - a == 5 for a, b in zip(seq, seq[1:]))

    def test_pattern_cycles(self):
        v = ValueStream(ValueMix(ValueClass.PATTERN, nvalues=3), make_rng())
        seq = [v.next_value() for _ in range(9)]
        assert seq[:3] == seq[3:6] == seq[6:9]
        assert len(set(seq)) == 3

    def test_pattern_stutter_repeats_previous(self):
        v = ValueStream(
            ValueMix(ValueClass.PATTERN, nvalues=3, break_prob=1.0), make_rng()
        )
        # with permanent stutter, the same (previous) value repeats forever
        seq = [v.next_value() for _ in range(5)]
        assert len(set(seq)) == 1

    def test_random_varies(self):
        v = ValueStream(ValueMix(ValueClass.RANDOM), make_rng())
        assert len({v.next_value() for _ in range(20)}) > 15

    def test_values_in_64bit_range(self):
        for vclass in ValueClass:
            v = ValueStream(ValueMix(vclass), make_rng())
            for _ in range(50):
                assert 0 <= v.next_value() < (1 << 64)


class TestBranchOutcomes:
    def test_loop_density(self):
        b = BranchOutcomes(BranchSpec(BranchModel.LOOP, 16), make_rng())
        outcomes = [b.next_outcome() for _ in range(160)]
        assert abs(sum(outcomes) - 150) <= 2  # taken 15/16 of the time

    def test_pattern_periodicity(self):
        b = BranchOutcomes(BranchSpec(BranchModel.PATTERN, 8), make_rng())
        seq = [b.next_outcome() for _ in range(32)]
        assert seq[:8] == seq[8:16] == seq[16:24]

    def test_biased_rate(self):
        b = BranchOutcomes(BranchSpec(BranchModel.BIASED, 0.8), make_rng())
        outcomes = [b.next_outcome() for _ in range(2000)]
        assert 0.72 < sum(outcomes) / len(outcomes) < 0.88

    def test_noise_flips_outcomes(self):
        clean = BranchOutcomes(BranchSpec(BranchModel.LOOP, 16, noise=0.0), make_rng())
        noisy = BranchOutcomes(BranchSpec(BranchModel.LOOP, 16, noise=0.5), make_rng())
        a = [clean.next_outcome() for _ in range(200)]
        b = [noisy.next_outcome() for _ in range(200)]
        assert a != b
