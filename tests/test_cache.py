"""Unit tests for the set-associative cache."""

import pytest

from repro.memory import Cache


def make_cache(size=4096, assoc=2, line=64):
    return Cache(size, assoc, line_size=line, latency=2, name="test")


class TestConstruction:
    def test_geometry(self):
        c = make_cache(size=4096, assoc=2, line=64)
        assert c.num_sets == 32

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            Cache(4096, 2, line_size=48)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Cache(4096 + 64, 2, line_size=64)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            Cache(3 * 64 * 2, 2, line_size=64)


class TestLookupInsert:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert not c.lookup(0x1000)
        c.insert(0x1000)
        assert c.lookup(0x1000)
        assert c.hits == 1
        assert c.misses == 1

    def test_same_line_different_bytes_hit(self):
        c = make_cache()
        c.insert(0x1000)
        assert c.lookup(0x1000 + 63)
        assert not c.lookup(0x1000 + 64)

    def test_lru_eviction_order(self):
        c = make_cache(size=2 * 64, assoc=2, line=64)  # one set, two ways
        c.insert(0 * 64)
        c.insert(1 * 64)
        # touch line 0 so line 1 becomes LRU
        assert c.lookup(0)
        victim = c.insert(2 * 64)
        assert victim == 1  # line-aligned address of the victim
        assert c.probe(0)
        assert not c.probe(64)
        assert c.probe(128)

    def test_insert_existing_line_refreshes_without_eviction(self):
        c = make_cache(size=2 * 64, assoc=2, line=64)
        c.insert(0)
        c.insert(64)
        assert c.insert(0) is None  # refresh, no eviction
        c.insert(128)  # evicts 64 (LRU), not 0
        assert c.probe(0)
        assert not c.probe(64)

    def test_occupancy(self):
        c = make_cache()
        assert c.occupancy == 0
        for i in range(10):
            c.insert(i * 64)
        assert c.occupancy == 10

    def test_capacity_bounded(self):
        c = make_cache(size=4096, assoc=2)
        for i in range(1000):
            c.insert(i * 64)
        assert c.occupancy <= 4096 // 64


class TestProbeInvalidate:
    def test_probe_does_not_update_stats_or_lru(self):
        c = make_cache(size=2 * 64, assoc=2, line=64)
        c.insert(0)
        c.insert(64)
        c.probe(0)  # must NOT promote line 0
        c.insert(128)  # evicts true LRU = 0
        assert not c.probe(0)
        assert c.hits == 0 and c.misses == 0

    def test_invalidate(self):
        c = make_cache()
        c.insert(0x2000)
        assert c.invalidate(0x2000)
        assert not c.probe(0x2000)
        assert not c.invalidate(0x2000)

    def test_reset_stats_keeps_contents(self):
        c = make_cache()
        c.insert(0x40)
        c.lookup(0x40)
        c.reset_stats()
        assert c.hits == 0 and c.misses == 0
        assert c.probe(0x40)


class TestConflicts:
    def test_set_conflict_behavior(self):
        c = make_cache(size=4096, assoc=2, line=64)  # 32 sets
        # three lines mapping to the same set
        stride = 32 * 64
        c.insert(0)
        c.insert(stride)
        c.insert(2 * stride)
        present = [c.probe(k * stride) for k in range(3)]
        assert present == [False, True, True]

    def test_different_sets_do_not_conflict(self):
        c = make_cache(size=4096, assoc=2, line=64)
        c.insert(0)
        c.insert(64)
        c.insert(128)
        assert all(c.probe(a) for a in (0, 64, 128))
