"""Unit tests for the abstract ISA layer."""

import pytest

from repro.isa import (
    EXEC_LATENCY,
    Instruction,
    InstructionBuilder,
    NUM_LOGICAL_REGS,
    OpClass,
    REG_ZERO,
)


class TestOpClass:
    def test_memory_classification(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.INT_ALU.is_memory
        assert not OpClass.BRANCH.is_memory

    def test_fp_classification(self):
        assert OpClass.FP_ALU.is_fp
        assert OpClass.FP_MUL.is_fp
        assert not OpClass.LOAD.is_fp
        assert not OpClass.INT_MUL.is_fp

    def test_register_writers(self):
        assert OpClass.LOAD.writes_register
        assert OpClass.INT_ALU.writes_register
        assert not OpClass.STORE.writes_register
        assert not OpClass.BRANCH.writes_register

    def test_every_class_has_latency(self):
        for op in OpClass:
            assert EXEC_LATENCY[op] >= 1

    def test_multiplies_slower_than_alu(self):
        assert EXEC_LATENCY[OpClass.INT_MUL] > EXEC_LATENCY[OpClass.INT_ALU]


class TestInstruction:
    def test_load_requires_address(self):
        with pytest.raises(ValueError):
            Instruction(0x100, OpClass.LOAD, dst=1)

    def test_store_requires_address(self):
        with pytest.raises(ValueError):
            Instruction(0x100, OpClass.STORE, srcs=(1,))

    def test_branch_requires_outcome(self):
        with pytest.raises(ValueError):
            Instruction(0x100, OpClass.BRANCH, srcs=(1,))

    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(0x100, OpClass.INT_ALU, dst=NUM_LOGICAL_REGS)
        with pytest.raises(ValueError):
            Instruction(0x100, OpClass.INT_ALU, srcs=(NUM_LOGICAL_REGS,), dst=1)

    def test_valid_load(self):
        inst = Instruction(0x100, OpClass.LOAD, (2,), 1, addr=0x8000, value=42)
        assert inst.pc == 0x100
        assert inst.dst == 1
        assert inst.srcs == (2,)
        assert inst.addr == 0x8000
        assert inst.value == 42

    def test_repr_mentions_fields(self):
        inst = Instruction(0x100, OpClass.LOAD, (2,), 1, addr=0x8000, value=42)
        text = repr(inst)
        assert "LOAD" in text
        assert "0x8000" in text


class TestInstructionBuilder:
    def test_pcs_advance(self):
        ib = InstructionBuilder(base_pc=0x1000)
        a = ib.int_alu(dst=1)
        b = ib.int_alu(dst=2)
        assert b.pc == a.pc + 4

    def test_explicit_pc_does_not_advance_cursor(self):
        ib = InstructionBuilder(base_pc=0x1000)
        a = ib.int_alu(dst=1, pc=0x5000)
        b = ib.int_alu(dst=2)
        assert a.pc == 0x5000
        assert b.pc == 0x1000

    def test_all_op_helpers(self):
        ib = InstructionBuilder()
        assert ib.load(dst=1, addr=8, value=1).op is OpClass.LOAD
        assert ib.store(addr=8, srcs=(1,)).op is OpClass.STORE
        assert ib.int_alu(dst=1).op is OpClass.INT_ALU
        assert ib.int_mul(dst=1).op is OpClass.INT_MUL
        assert ib.fp_alu(dst=1).op is OpClass.FP_ALU
        assert ib.fp_mul(dst=1).op is OpClass.FP_MUL
        assert ib.branch(taken=True).op is OpClass.BRANCH

    def test_nop_writes_harmless_register(self):
        ib = InstructionBuilder()
        nop = ib.nop()
        assert nop.op is OpClass.INT_ALU
        assert nop.srcs == ()
        assert nop.dst != REG_ZERO
