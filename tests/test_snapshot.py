"""Engine checkpointing: snapshot/restore determinism and functional warmup.

The hard contract under test: pausing a run (``run(max_steps=...)``),
serializing the engine (``snapshot()``), restoring the payload into a
freshly built engine and finishing must produce *byte-identical* stats to
the uninterrupted run — for every simulation mode, including MTVP paused
mid-spawn with live speculative contexts on the pending heap.  The
architectural scope has the same property for the warmup protocol:
``fast_forward`` then run equals restore-from-arch-snapshot then run.
"""

from __future__ import annotations

import hashlib
import json
import pickle

import pytest

from repro.core import Engine, MachineConfig, SimMode
from repro.select import AlwaysSelector, IlpPredSelector
from repro.vp import WangFranklinPredictor
from repro.workloads import get_workload

TRACE = get_workload("mcf").trace(3000, seed=0)

#: a config factory per simulation mode, all sharing the trace above
MODES = {
    "baseline": lambda: MachineConfig.hpca05_baseline(),
    "stvp": lambda: MachineConfig.stvp(),
    "mtvp": lambda: MachineConfig.mtvp(4),
    "spawn_only": lambda: MachineConfig.spawn_only(4),
}


def digest(stats) -> str:
    """Canonical byte-level identity of a stats object."""
    blob = json.dumps(stats.to_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def build(config, trace=TRACE) -> Engine:
    return Engine(
        trace,
        config,
        predictor=WangFranklinPredictor(),
        selector=IlpPredSelector(),
    )


class TestPausableRun:
    def test_run_with_budget_pauses_and_resumes(self):
        engine = build(MODES["mtvp"]())
        assert engine.run(max_steps=500) is None
        stats = engine.run()  # finish
        assert stats is not None
        assert stats.instructions_stepped >= len(TRACE)

    def test_segmented_run_equals_uninterrupted(self):
        ref = build(MODES["mtvp"]()).run()
        engine = build(MODES["mtvp"]())
        while engine.run(max_steps=97) is None:
            pass
        # the final successful segment returned the stats; rerun to fetch
        engine2 = build(MODES["mtvp"]())
        out = None
        while out is None:
            out = engine2.run(max_steps=97)
        assert digest(out) == digest(ref)

    def test_finished_engine_rejects_rerun(self):
        engine = build(MODES["baseline"]())
        engine.run()
        with pytest.raises(RuntimeError, match="once"):
            engine.run()


class TestFullSnapshotDeterminism:
    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_snapshot_restore_is_byte_identical(self, mode):
        config = MODES[mode]()
        ref = build(config).run()

        paused = build(MODES[mode]())
        assert paused.run(max_steps=1200) is None
        payload = paused.snapshot()
        # the payload must survive serialization (it is what a process
        # boundary or an on-disk checkpoint would carry)
        payload = pickle.loads(pickle.dumps(payload))

        fresh = build(MODES[mode]())
        fresh.restore(payload)
        assert digest(fresh.run()) == digest(ref)

    def test_mtvp_mid_spawn_with_live_speculative_contexts(self):
        def make():
            return Engine(
                TRACE,
                MachineConfig.mtvp(8),
                predictor=WangFranklinPredictor(),
                selector=AlwaysSelector(),  # spawn at every opportunity
            )

        ref = make().run()
        paused = make()
        caught = False
        while not caught:
            if paused.run(max_steps=40) is not None:
                break
            speculative = [
                c
                for c in paused._contexts
                if c is not None and c.speculative and c.alive
            ]
            if speculative and paused._pending:
                caught = True
        assert caught, "never paused mid-spawn; shrink max_steps"

        payload = pickle.loads(pickle.dumps(paused.snapshot()))
        fresh = make()
        fresh.restore(payload)
        assert digest(fresh.run()) == digest(ref)

    def test_restore_validates_mode(self):
        payload = build(MODES["mtvp"]()).snapshot()
        other = build(MODES["baseline"]())
        with pytest.raises(ValueError, match="mode|context"):
            other.restore(payload)

    def test_restore_requires_fresh_engine(self):
        payload = build(MODES["baseline"]()).snapshot()
        used = build(MODES["baseline"]())
        used.run(max_steps=10)
        with pytest.raises(RuntimeError, match="fresh"):
            used.restore(payload)

    def test_restore_validates_version(self):
        payload = build(MODES["baseline"]()).snapshot()
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            build(MODES["baseline"]()).restore(payload)


class TestFastForward:
    def test_fast_forward_advances_position_without_cycles(self):
        engine = build(MODES["mtvp"](), trace=TRACE)
        engine.fast_forward(1000)
        assert engine._contexts[0].pos == 1000
        assert engine.stats.warmup_instructions == 1000
        assert engine.stats.cycles == 0
        stats = engine.run()
        # only the measured interval is timed
        assert stats.instructions_stepped == len(TRACE) - 1000
        assert stats.warmup_instructions == 1000

    def test_fast_forward_rejects_started_engine(self):
        engine = build(MODES["baseline"]())
        engine.run(max_steps=10)
        with pytest.raises(RuntimeError):
            engine.fast_forward(100)

    def test_fast_forward_must_leave_a_measured_region(self):
        engine = build(MODES["baseline"]())
        with pytest.raises(ValueError):
            engine.fast_forward(len(TRACE))

    def test_warmup_key_only_serialized_when_nonzero(self):
        plain = build(MODES["baseline"]()).run()
        assert "warmup_instructions" not in plain.to_dict()
        warmed = build(MODES["baseline"]())
        warmed.fast_forward(500)
        assert warmed.run().to_dict()["warmup_instructions"] == 500


class TestArchSnapshot:
    def test_arch_restore_equals_fast_forward(self):
        warm = build(MODES["mtvp"]())
        warm.fast_forward(1500)
        payload = pickle.loads(pickle.dumps(warm.snapshot(scope="arch")))
        ref = warm.run()

        restored = build(MODES["mtvp"]())
        restored.restore(payload)
        assert digest(restored.run()) == digest(ref)

    def test_arch_checkpoint_shared_across_timing_axes(self):
        # a spawn-latency change is timing-only: the warmed architectural
        # state is identical, so one checkpoint must serve both machines
        warm = build(MachineConfig.mtvp(4))
        warm.fast_forward(1500)
        payload = warm.snapshot(scope="arch")

        direct = build(MachineConfig.mtvp(4, spawn_latency=32))
        direct.fast_forward(1500)
        ref = direct.run()

        restored = build(MachineConfig.mtvp(4, spawn_latency=32))
        restored.restore(payload)
        assert digest(restored.run()) == digest(ref)

    def test_arch_snapshot_rejects_speculative_state(self):
        engine = Engine(
            TRACE,
            MachineConfig.mtvp(8),
            predictor=WangFranklinPredictor(),
            selector=AlwaysSelector(),
        )
        while engine.run(max_steps=40) is None:
            if engine._pending:
                break
        assert engine._pending, "no spawn in flight; adjust the trace"
        with pytest.raises(RuntimeError):
            engine.snapshot(scope="arch")

    def test_arch_restore_rejects_position_beyond_trace(self):
        warm = build(MODES["baseline"]())
        warm.fast_forward(2500)
        payload = warm.snapshot(scope="arch")
        short = build(MODES["baseline"](), trace=TRACE[:2000])
        with pytest.raises(ValueError):
            short.restore(payload)

    def test_unknown_scope_rejected(self):
        engine = build(MODES["baseline"]())
        with pytest.raises(ValueError, match="scope"):
            engine.snapshot(scope="partial")
