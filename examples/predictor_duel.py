#!/usr/bin/env python3
"""Compare value predictors across the modeled SPEC suite.

Runs oracle, Wang-Franklin hybrid, DFCM-3, stride and last-value
predictors under MTVP-8 on a selection of workloads and reports accuracy
and speedup per predictor — Section 5.4's comparison, widened to every
predictor in the library.

Run:  python examples/predictor_duel.py [length]
"""

import sys

from repro import (
    DfcmPredictor,
    IlpPredSelector,
    LastValuePredictor,
    MachineConfig,
    OraclePredictor,
    StridePredictor,
    WangFranklinPredictor,
    simulate,
)

LENGTH = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
WORKLOADS = ["mcf", "vpr r", "vortex", "swim", "art 1", "facerec"]
PREDICTORS = {
    "oracle": OraclePredictor,
    "wang-franklin": WangFranklinPredictor,
    "dfcm-3": DfcmPredictor,
    "stride": StridePredictor,
    "last-value": LastValuePredictor,
}


def main():
    header = f"{'workload':10s}" + "".join(f"{n:>16s}" for n in PREDICTORS)
    print("MTVP-8 % speedup (prediction accuracy) by value predictor\n")
    print(header)
    print("-" * len(header))
    for workload in WORKLOADS:
        base = simulate(
            workload, MachineConfig.hpca05_baseline(),
            selector=IlpPredSelector(), length=LENGTH,
        )
        cells = []
        for factory in PREDICTORS.values():
            stats = simulate(
                workload,
                MachineConfig.mtvp(8),
                predictor=factory(),
                selector=IlpPredSelector(),
                length=LENGTH,
            )
            pct = 100.0 * (stats.useful_ipc / base.useful_ipc - 1.0)
            cells.append(f"{pct:+7.1f} ({stats.prediction_accuracy:4.0%})")
        print(f"{workload:10s}" + "".join(f"{c:>16s}" for c in cells))
    print()
    print("The oracle bounds what value locality is worth; the Wang-Franklin")
    print("hybrid keeps accuracy high by predicting conservatively; DFCM is")
    print("more aggressive — more predictions, more mispredictions (Sec 5.4).")


if __name__ == "__main__":
    main()
