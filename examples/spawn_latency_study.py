#!/usr/bin/env python3
"""Sensitivity study: how expensive may a thread spawn be? (Figure 2.)

Sweeps the register-map flash-copy latency from 1 to 32 cycles with 2/4/8
hardware contexts on a memory-bound workload, reporting the MTVP speedup
at each point.  The paper concludes the technique is "in the best cases
only somewhat sensitive to long latencies" — single fetch path MTVP only
needs to set up a copy-on-write, so its 1-cycle spawn is realistic, and
even 8-16 cycle copies retain most of the benefit.

Run:  python examples/spawn_latency_study.py [workload]
"""

import sys

from repro import IlpPredSelector, MachineConfig, OraclePredictor, simulate

WORKLOAD = sys.argv[1] if len(sys.argv) > 1 else "facerec"
LENGTH = 8_000
LATENCIES = (1, 4, 8, 16, 32)
THREADS = (2, 4, 8)


def main():
    base = simulate(
        WORKLOAD, MachineConfig.hpca05_baseline(),
        selector=IlpPredSelector(), length=LENGTH,
    )
    print(f"{WORKLOAD}: MTVP % speedup vs spawn latency  (baseline IPC "
          f"{base.useful_ipc:.3f})\n")
    header = f"{'spawn latency':>14s}" + "".join(f"{t:>10d}T" for t in THREADS)
    print(header)
    print("-" * len(header))
    for latency in LATENCIES:
        row = [f"{latency:>12d}cy"]
        for threads in THREADS:
            stats = simulate(
                WORKLOAD,
                MachineConfig.mtvp(threads, spawn_latency=latency),
                predictor=OraclePredictor(),
                selector=IlpPredSelector(),
                length=LENGTH,
            )
            row.append(f"{100 * (stats.useful_ipc / base.useful_ipc - 1):+10.1f}")
        print("".join(row))
    print()
    print("Longer spawns eat into each link of the speculation chain; more")
    print("contexts amortize the cost until the latency dominates the links.")


if __name__ == "__main__":
    main()
