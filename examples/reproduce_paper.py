#!/usr/bin/env python3
"""Regenerate any (or every) table/figure of the paper from the command line.

Usage:
    python examples/reproduce_paper.py            # list experiments
    python examples/reproduce_paper.py fig1       # one experiment
    python examples/reproduce_paper.py all 12000  # everything, 12k instrs

The experiment registry lives in repro.harness.EXPERIMENTS; the id-to-
artifact mapping is documented in DESIGN.md §4 and the measured-vs-paper
comparison in EXPERIMENTS.md.
"""

import sys
import time

from repro.harness import EXPERIMENTS


def main() -> int:
    if len(sys.argv) < 2:
        print("experiments:")
        for exp_id, fn in EXPERIMENTS.items():
            first_line = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {exp_id:8s} {first_line}")
        print(f"\nusage: {sys.argv[0]} <experiment-id|all> [trace-length]")
        return 0
    target = sys.argv[1]
    length = int(sys.argv[2]) if len(sys.argv) > 2 else None
    ids = list(EXPERIMENTS) if target == "all" else [target]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"known: {', '.join(EXPERIMENTS)}")
        return 1
    for exp_id in ids:
        start = time.time()
        result = EXPERIMENTS[exp_id](length=length)
        print(result.format_table())
        print(f"[{exp_id} took {time.time() - start:.0f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
