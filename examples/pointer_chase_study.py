#!/usr/bin/env python3
"""Case study: why wide windows fail on pointer chases and MTVP does not.

Builds the scenario from Section 5.7 by hand — a linked-list traversal
where every node access depends on the previous node's value — and runs it
against four machines:

* the Table 1 baseline,
* an idealized 8192-entry-window "checkpoint" machine,
* STVP,
* MTVP with 8 threads.

A wide window cannot overlap serial misses (each address is unknown until
the previous load returns); value prediction breaks exactly that
dependence.  This is the paper's central argument against checkpoint
architectures on integer codes.

Run:  python examples/pointer_chase_study.py
"""

from repro import (
    AlwaysSelector,
    Engine,
    InstructionBuilder,
    MachineConfig,
    OraclePredictor,
)

NODES = 40
WORK_PER_NODE = 100
PTR_REG = 1


def build_chase_trace():
    """`node = node->next` over NODES cold nodes, with per-node work.

    Node addresses are scattered pseudo-randomly across a huge region so
    no prefetcher can follow the chase — exactly the situation the paper's
    integer benchmarks put the machine in.
    """
    import random

    rng = random.Random(42)
    ib = InstructionBuilder()
    trace = []
    for i in range(NODES):
        node_addr = (1 << 33) + rng.randrange(0, 1 << 28, 64)
        # the pointer load: address register is its own destination, so the
        # traversal is one serial chain; every node misses to memory
        trace.append(
            ib.load(
                dst=PTR_REG,
                srcs=(PTR_REG,),
                addr=node_addr,
                value=1000 + i,  # the next pointer: what MTVP predicts
                pc=0x4000,
            )
        )
        # per-node work: a field read off the pointer plus independent ALU
        trace.append(
            ib.load(dst=2, srcs=(PTR_REG,), addr=node_addr + 64, value=7, pc=0x4010)
        )
        for k in range(WORK_PER_NODE):
            trace.append(ib.int_alu(dst=3 + (k % 8), srcs=(2,)))
    return trace


def main():
    trace = build_chase_trace()
    machines = {
        "baseline (256-entry ROB)": (MachineConfig.hpca05_baseline(warm_caches=False), None),
        "wide window (8K ROB)": (MachineConfig.wide_window(warm_caches=False), None),
        "STVP": (MachineConfig.stvp(warm_caches=False), OraclePredictor()),
        "MTVP x8": (MachineConfig.mtvp(8, warm_caches=False), OraclePredictor()),
    }
    print(f"serial pointer chase: {NODES} nodes, all missing to memory\n")
    base = None
    for name, (config, predictor) in machines.items():
        engine = Engine(list(trace), config, predictor=predictor,
                        selector=AlwaysSelector())
        stats = engine.run()
        if base is None:
            base = stats.useful_ipc
        print(
            f"{name:28s} IPC {stats.useful_ipc:6.3f}  "
            f"({100 * (stats.useful_ipc / base - 1):+7.1f}%)  "
            f"cycles {stats.cycles:7d}  spawns {stats.spawns}"
        )
    print()
    print("The wide window buys almost nothing: the next address simply is")
    print("not known until the previous load returns.  Predicting the loaded")
    print("pointer VALUE breaks the chain — and running the speculative")
    print("stream in its own thread lets it commit ahead (MTVP).")


if __name__ == "__main__":
    main()
