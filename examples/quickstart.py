#!/usr/bin/env python3
"""Quickstart: threaded value prediction in a dozen lines.

Simulates the paper's canonical winner (mcf — a serial pointer chase over
a ~100MB array) on three machines:

* the Table 1 baseline (no value prediction),
* single-threaded value prediction (STVP),
* threaded value prediction with 8 hardware contexts (MTVP).

Run:  python examples/quickstart.py [workload] [length]
"""

import sys

from repro import IlpPredSelector, MachineConfig, WangFranklinPredictor, simulate

workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
length = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000

print(f"workload: {workload}  ({length} instructions)\n")

machines = {
    "baseline (no VP)": MachineConfig.hpca05_baseline(),
    "STVP": MachineConfig.stvp(),
    "MTVP, 8 threads": MachineConfig.mtvp(8),
}

base_ipc = None
for name, config in machines.items():
    stats = simulate(
        workload,
        config,
        predictor=WangFranklinPredictor(),
        selector=IlpPredSelector(),
        length=length,
    )
    if base_ipc is None:
        base_ipc = stats.useful_ipc
    speedup = 100.0 * (stats.useful_ipc / base_ipc - 1.0)
    print(f"=== {name}")
    print(f"    useful IPC     {stats.useful_ipc:6.3f}   ({speedup:+.1f}% vs baseline)")
    print(f"    cycles         {stats.cycles}")
    print(
        f"    predictions    {stats.total_predictions} "
        f"(accuracy {stats.prediction_accuracy:.1%})"
    )
    print(
        f"    threads        {stats.spawns} spawned, "
        f"{stats.confirms} confirmed, {stats.kills} killed"
    )
    print()

print("The speculative thread commits past the stalled load into the store")
print("buffer, so its window keeps advancing while memory is busy — that is")
print("the entire trick of the paper.")
